#include "eval/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pattern/properties.h"
#include "util/cancel.h"

namespace xpv {

void EvalScratch::ComputeRow(NodeId v) {
  const Tree& t = *tree_;
  // Word-parallel child-witness join: one OR per tree child accumulates,
  // for every pattern node at once, whether its subtree embeds at a child
  // (child_or) or anywhere strictly below v (sub_or).
  ZeroRow(child_or_.data(), words_);
  ZeroRow(sub_or_.data(), words_);
  for (NodeId w : t.children(v)) {
    OrRow(child_or_.data(), down_.row(w), words_);
    OrRow(sub_or_.data(), sub_.row(w), words_);
  }

  // Candidates by label, then per candidate two subset tests (whole wide
  // words per iteration) replace the per-child scan of the naive kernel.
  BitWord* down_row = down_.row(v);
  const BitWord* cand = masks_.CandidateRow(t.label(v));
  CopyRow(down_row, cand, words_);
  for (int wi = 0; wi < words_; ++wi) {
    // Leaf pattern nodes have no witness requirements — only candidates
    // with children need the subset tests.
    BitWord pending = down_row[wi] & masks_.has_req()[wi];
    while (pending != 0) {
      const int b = std::countr_zero(pending);
      pending &= pending - 1;
      const NodeId q = static_cast<NodeId>(wi * kBitWordBits + b);
      if (!ContainsAllBits(child_or_.data(), masks_.need_child(q), words_) ||
          !ContainsAllBits(sub_or_.data(), masks_.need_desc(q), words_)) {
        down_row[wi] &= ~(BitWord{1} << b);
      }
    }
  }

  OrRowsInto(sub_.row(v), down_row, sub_or_.data(), words_);
}

void EvalScratch::Compute(const Pattern& p, const Tree& t,
                          int row_capacity_hint) {
  assert(!p.IsEmpty());
  pattern_ = &p;
  tree_ = &t;
  masks_.Build(p);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  const int rows = std::max(t.size(), row_capacity_hint);
  down_.Reset(rows, p.size());
  sub_.Reset(rows, p.size());
  // Tree ids are topologically sorted; reverse order visits children first.
  // The walk is the serving path's longest uninterruptible stretch on big
  // documents, so it polls the installed CancelToken every few hundred
  // rows — a deadline interrupts mid-document, not at document boundaries.
  CancelCheck cancel_check;
  for (NodeId v = t.size() - 1; v >= 0; --v) {
    cancel_check.Tick();
    ComputeRow(v);
  }
}

void EvalScratch::ComputeMany(const Pattern* const* patterns, size_t count,
                              const Tree& t) {
  int total = 0;
  for (size_t i = 0; i < count; ++i) {
    assert(!patterns[i]->IsEmpty());
    total += patterns[i]->size();
  }
  pattern_ = nullptr;  // Multi-pattern tables do not support Update.
  tree_ = &t;
  masks_.BuildMany(patterns, count);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  down_.Reset(t.size(), total);
  sub_.Reset(t.size(), total);
  CancelCheck cancel_check;
  for (NodeId v = t.size() - 1; v >= 0; --v) {
    cancel_check.Tick();
    ComputeRow(v);
  }
}

void EvalScratch::ComputeAnchored(const Pattern& p, const Tree& t,
                                  const std::vector<NodeId>& anchors) {
  assert(!p.IsEmpty());
  pattern_ = &p;
  tree_ = &t;
  masks_.Build(p);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  down_.ResizeNoZero(t.size(), p.size());
  sub_.ResizeNoZero(t.size(), p.size());
  ComputeAnchoredRows(t, anchors);
}

void EvalScratch::ComputeAnchoredMany(const Pattern* const* patterns,
                                      size_t count, const Tree& t,
                                      const std::vector<NodeId>& anchors) {
  int total = 0;
  for (size_t i = 0; i < count; ++i) {
    assert(!patterns[i]->IsEmpty());
    total += patterns[i]->size();
  }
  pattern_ = nullptr;  // Multi-pattern tables do not support Update.
  tree_ = &t;
  masks_.BuildMany(patterns, count);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  down_.ResizeNoZero(t.size(), total);
  sub_.ResizeNoZero(t.size(), total);
  ComputeAnchoredRows(t, anchors);
}

void EvalScratch::ComputeAnchoredRows(const Tree& t,
                                      const std::vector<NodeId>& anchors) {
  // Collect the union of the anchor subtrees (anchors may be nested; the
  // visited row deduplicates). The union is closed under tree children, so
  // computing exactly these rows children-first keeps every row that
  // `ComputeRow` consults valid. All walk scratch is arena-backed: the
  // stack never exceeds |anchors| + |t| pushes (each node's children are
  // pushed at most once, when it is first visited).
  arena_.Reset();
  const int tree_words = BitWordsFor(t.size());
  BitWord* visited = arena_.AllocateArray<BitWord>(
      static_cast<size_t>(tree_words));
  ZeroRow(visited, tree_words);
  NodeId* nodes =
      arena_.AllocateArray<NodeId>(static_cast<size_t>(t.size()));
  NodeId* stack = arena_.AllocateArray<NodeId>(
      anchors.size() + static_cast<size_t>(t.size()));
  int node_count = 0;
  size_t sp = 0;
  for (NodeId a : anchors) stack[sp++] = a;
  while (sp > 0) {
    const NodeId v = stack[--sp];
    if (TestBit(visited, v)) continue;
    SetBit(visited, v);
    nodes[node_count++] = v;
    for (NodeId w : t.children(v)) stack[sp++] = w;
  }
  // Children have larger ids than their parents; decreasing id order is
  // children-first.
  std::sort(nodes, nodes + node_count, std::greater<NodeId>());
  CancelCheck cancel_check;
  for (int i = 0; i < node_count; ++i) {
    cancel_check.Tick();
    ComputeRow(nodes[i]);
  }
}

void EvalScratch::Update(const Tree& t, NodeId suffix_start,
                         const std::vector<NodeId>& dirty_prefix_desc) {
  assert(pattern_ != nullptr);
  tree_ = &t;
  if (t.size() > down_.rows()) {
    // Grow preserving the prefix rows (suffix rows are rewritten below).
    const int np = pattern_->size();
    BitMatrix grown;
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(down_.row(v), down_.row(v) + words_, grown.row(v));
    }
    std::swap(down_, grown);
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(sub_.row(v), sub_.row(v) + words_, grown.row(v));
    }
    std::swap(sub_, grown);
  }
  CancelCheck cancel_check;
  for (NodeId v = t.size() - 1; v >= suffix_start; --v) {
    cancel_check.Tick();
    ComputeRow(v);
  }
  for (NodeId v : dirty_prefix_desc) {
    assert(v < suffix_start);
    ComputeRow(v);
  }
}

void EvalScratch::RemapRows(const std::vector<NodeId>& remap,
                            NodeId old_row_count) {
  assert(pattern_ != nullptr);
  // Destinations never exceed their source (order-preserving compaction),
  // so an ascending in-place pass never overwrites a row still to move.
  // Only the first `old_row_count` remap entries name rows that exist;
  // later entries are nodes the same delta inserted, whose rows the
  // following `Update` computes from scratch.
  const size_t limit =
      std::min(remap.size(), static_cast<size_t>(old_row_count));
  for (size_t n = 0; n < limit; ++n) {
    const NodeId nn = remap[n];
    if (nn == kNoNode || static_cast<size_t>(nn) == n) continue;
    assert(static_cast<size_t>(nn) < n);
    std::copy(down_.row(static_cast<NodeId>(n)),
              down_.row(static_cast<NodeId>(n)) + words_,
              down_.row(nn));
    std::copy(sub_.row(static_cast<NodeId>(n)),
              sub_.row(static_cast<NodeId>(n)) + words_,
              sub_.row(nn));
  }
}

namespace {

// Builds a pattern's sweep steps: the selection path root-first, each node
// as its packed DP bit id (`offset` shifts into a multi-pattern bit space)
// paired with the edge entering it. The first step's edge is never
// consulted — it only seeds the frontier.
std::vector<internal::SweepStep> MakeSweepSteps(const Pattern& p,
                                                NodeId offset) {
  SelectionInfo info(p);
  std::vector<internal::SweepStep> steps;
  steps.reserve(info.path().size());
  for (size_t k = 0; k < info.path().size(); ++k) {
    const NodeId s = info.path()[k];
    steps.push_back(internal::SweepStep{
        static_cast<NodeId>(offset + s),
        k == 0 ? EdgeType::kChild : p.edge(s)});
  }
  return steps;
}

std::vector<NodeId> RunSweep(const Tree& tree, const EvalScratch& scratch,
                             const internal::SweepStep* steps, size_t n_steps,
                             bool anchored, BitWord* current, int words);

}  // namespace

Evaluator::Evaluator(const Pattern& p, const Tree& t, EvalScratch* scratch)
    : pattern_(p),
      tree_(t),
      scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
  assert(!p.IsEmpty());
  steps_ = MakeSweepSteps(p, 0);
  scratch_->Compute(p, t);
}

Evaluator::Evaluator(const Pattern& p, const Tree& t,
                     const std::vector<NodeId>& anchors, EvalScratch* scratch)
    : pattern_(p),
      tree_(t),
      scratch_(scratch != nullptr ? scratch : &owned_scratch_),
      anchored_(true) {
  assert(!p.IsEmpty());
  steps_ = MakeSweepSteps(p, 0);
  scratch_->ComputeAnchored(p, t, anchors);
}

std::vector<NodeId> Evaluator::RunSelectionSweep(BitWord* current,
                                                 int words) const {
  return RunSweep(tree_, *scratch_, steps_.data(), steps_.size(), anchored_,
                  current, words);
}

namespace {

std::vector<NodeId> RunSweep(const Tree& tree_, const EvalScratch& scratch,
                             const internal::SweepStep* steps, size_t n_steps,
                             bool anchored_, BitWord* current, int words) {
  // The U_k sets are bit rows over tree nodes. Each step runs in one of
  // two modes:
  //  - *sparse*: iterate only the set bits of the frontier — children for
  //    a child edge, a depth-first subtree walk for a descendant edge.
  //    Sweeps anchored at a few small subtrees (the materialized-view
  //    serving path) never touch the rest of the document.
  //  - *linear*: one pass over all nodes in id order with word-packed
  //    reach bits — dense frontiers (root-anchored or weak evaluation
  //    over large documents) keep the old sweep's locality at an eighth
  //    of the memory traffic.
  // Child edges pick by frontier popcount (their sparse cost is bounded by
  // the frontier's child count); descendant edges go sparse only on
  // anchored evaluators, whose subtree union bounds the walk.
  // All sweep scratch is bump-allocated from the kernel's arena, which the
  // public entry points (`OutputsAnchoredAt`, `WeakOutputs`) reset before
  // allocating the frontier — a view-serving loop calling
  // `OutputsAnchoredAt` per stored output performs no heap allocation
  // beyond the returned vector once the arena is warm. The DFS stack never
  // exceeds |t| entries (each node has one parent, so it is pushed at most
  // once per level).
  const int nt = tree_.size();
  Arena& arena = scratch.scratch_arena();
  BitWord* next = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  BitWord* reach = nullptr;   // Descendant-step reached marker (lazy).
  NodeId* stack = nullptr;    // Descendant-step DFS scratch (lazy).
  for (size_t k = 1; k < n_steps; ++k) {
    if (!AnyBit(current, words)) return {};
    const NodeId sk = steps[k].bit;
    ZeroRow(next, words);
    if (steps[k].edge == EdgeType::kChild) {
      // Anchored sweeps are always sparse (no popcount pass needed).
      int frontier = 0;
      if (!anchored_) {
        for (int wi = 0; wi < words; ++wi) {
          frontier += std::popcount(current[wi]);
        }
      }
      if (anchored_ || frontier <= nt / (2 * kBitWordBits)) {
        for (int wi = 0; wi < words; ++wi) {
          BitWord w = current[wi];
          while (w != 0) {
            const NodeId u =
                static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w));
            w &= w - 1;
            for (NodeId v : tree_.children(u)) {
              if (scratch.Down(v, sk)) SetBit(next, v);
            }
          }
        }
      } else {
        for (NodeId v = 1; v < nt; ++v) {
          if (TestBit(current, tree_.parent(v)) && scratch.Down(v, sk)) {
            SetBit(next, v);
          }
        }
      }
    } else if (anchored_) {
      // Descendants of the current set: depth-first from each member, with
      // a reached-marker row so overlapping subtrees are walked once.
      // Everything popped from the stack is a proper descendant of some
      // member and thus next-eligible — including members nested under
      // other members (the linear pass's `reach`). Descent below a member
      // is left to its own source iteration, so each node is pushed (and
      // its children scanned) at most once per level.
      if (reach == nullptr) {
        reach = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
        stack = arena.AllocateArray<NodeId>(static_cast<size_t>(nt));
      }
      ZeroRow(reach, words);
      size_t sp = 0;
      for (int wi = 0; wi < words; ++wi) {
        BitWord w = current[wi];
        while (w != 0) {
          const NodeId u =
              static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w));
          w &= w - 1;
          for (NodeId v : tree_.children(u)) stack[sp++] = v;
          while (sp > 0) {
            const NodeId v = stack[--sp];
            if (scratch.Down(v, sk)) SetBit(next, v);
            if (TestBit(reach, v) || TestBit(current, v)) {
              continue;  // Subtree covered (here or by v's own iteration).
            }
            SetBit(reach, v);
            for (NodeId c : tree_.children(v)) stack[sp++] = c;
          }
        }
      }
    } else {
      // Linear reach pass: reach(v) = some proper ancestor of v is in the
      // frontier; ids are topological so one forward scan suffices. The
      // propagation is branchless — only the (rare) frontier-and-down hits
      // branch.
      if (reach == nullptr) {
        reach = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
        stack = arena.AllocateArray<NodeId>(static_cast<size_t>(nt));
      }
      ZeroRow(reach, words);
      for (NodeId v = 1; v < nt; ++v) {
        const NodeId par = tree_.parent(v);
        const BitWord r =
            ((current[par >> 6] | reach[par >> 6]) >> (par & 63)) & 1;
        reach[v >> 6] |= r << (v & 63);
        if (r != 0 && scratch.Down(v, sk)) SetBit(next, v);
      }
    }
    std::swap(current, next);
  }
  std::vector<NodeId> outputs;
  for (int wi = 0; wi < words; ++wi) {
    BitWord w = current[wi];
    while (w != 0) {
      outputs.push_back(
          static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w)));
      w &= w - 1;
    }
  }
  return outputs;
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const Pattern& p, const Tree& t) {
  assert(!p.IsEmpty());
  steps_ = MakeSweepSteps(p, 0);
  scratch_.Compute(p, t);
  RecomputeOutputs(t);
}

void IncrementalEvaluator::ApplyUpdate(const Tree& t,
                                       const TreeDeltaReport& report) {
  if (report.compacted) {
    scratch_.RemapRows(report.remap, report.old_size);
  }
  scratch_.Update(t, report.suffix_start, report.dirty_prefix_desc);
  RecomputeOutputs(t);
}

void IncrementalEvaluator::RecomputeOutputs(const Tree& t) {
  Arena& arena = scratch_.scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(t.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  if (scratch_.Down(t.root(), steps_[0].bit)) SetBit(initial, t.root());
  outputs_ = RunSweep(t, scratch_, steps_.data(), steps_.size(),
                      /*anchored=*/false, initial, words);
}

std::vector<NodeId> Evaluator::OutputsAnchoredAt(NodeId anchor) const {
  Arena& arena = scratch_->scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(tree_.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  if (CanEmbedAt(steps_[0].bit, anchor)) {
    SetBit(initial, anchor);
  }
  return RunSelectionSweep(initial, words);
}

std::vector<NodeId> Evaluator::OutputsAnchoredAtAll(
    const std::vector<NodeId>& anchors) const {
  Arena& arena = scratch_->scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(tree_.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  const NodeId s0 = steps_[0].bit;
  for (NodeId a : anchors) {
    if (scratch_->Down(a, s0)) SetBit(initial, a);
  }
  // One sweep from the union frontier; the bit-order result collection
  // returns node ids sorted and deduplicated by construction.
  return RunSelectionSweep(initial, words);
}

std::vector<NodeId> Evaluator::WeakOutputs() const {
  NodeId s0 = steps_[0].bit;
  Arena& arena = scratch_->scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(tree_.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (scratch_->Down(v, s0)) SetBit(initial, v);
  }
  return RunSelectionSweep(initial, words);
}

MultiEvaluator::MultiEvaluator(const std::vector<const Pattern*>& patterns,
                               const Tree& t, EvalScratch* scratch)
    : tree_(t), scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
  steps_.reserve(patterns.size());
  NodeId offset = 0;
  for (const Pattern* p : patterns) {
    assert(p != nullptr && !p->IsEmpty());
    steps_.push_back(MakeSweepSteps(*p, offset));
    offset += p->size();
  }
  scratch_->ComputeMany(patterns.data(), patterns.size(), t);
}

MultiEvaluator::MultiEvaluator(const std::vector<const Pattern*>& patterns,
                               const Tree& t,
                               const std::vector<NodeId>& anchors,
                               EvalScratch* scratch)
    : tree_(t),
      scratch_(scratch != nullptr ? scratch : &owned_scratch_),
      anchored_(true) {
  steps_.reserve(patterns.size());
  NodeId offset = 0;
  for (const Pattern* p : patterns) {
    assert(p != nullptr && !p->IsEmpty());
    steps_.push_back(MakeSweepSteps(*p, offset));
    offset += p->size();
  }
  scratch_->ComputeAnchoredMany(patterns.data(), patterns.size(), t, anchors);
}

std::vector<NodeId> MultiEvaluator::Outputs(size_t i) const {
  const std::vector<internal::SweepStep>& steps = steps_[i];
  Arena& arena = scratch_->scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(tree_.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  if (scratch_->Down(tree_.root(), steps[0].bit)) {
    SetBit(initial, tree_.root());
  }
  return RunSweep(tree_, *scratch_, steps.data(), steps.size(), anchored_,
                  initial, words);
}

std::vector<NodeId> MultiEvaluator::OutputsAnchoredAtAll(
    size_t i, const std::vector<NodeId>& anchors) const {
  const std::vector<internal::SweepStep>& steps = steps_[i];
  Arena& arena = scratch_->scratch_arena();
  arena.Reset();
  const int words = BitWordsFor(tree_.size());
  BitWord* initial = arena.AllocateArray<BitWord>(static_cast<size_t>(words));
  ZeroRow(initial, words);
  const NodeId s0 = steps[0].bit;
  for (NodeId a : anchors) {
    if (scratch_->Down(a, s0)) SetBit(initial, a);
  }
  return RunSweep(tree_, *scratch_, steps.data(), steps.size(), anchored_,
                  initial, words);
}

namespace {

// The free-function entry points share one warm kernel per thread: a cold
// EvalScratch pays the arena block and the two aligned DP allocations on
// its first evaluation, which on tiny trees costs more than the DP itself.
// The thread-local keeps those buffers (bounded by the largest tree the
// thread has evaluated) warm across calls, the same discipline the serving
// path uses for its Apply/fallback kernels. Safe because an Evaluator
// borrows the scratch only for the duration of the call and nothing below
// Outputs()/WeakOutputs() re-enters these wrappers.
EvalScratch& ThreadScratch() {
  static thread_local EvalScratch scratch;
  return scratch;
}

}  // namespace

std::vector<NodeId> Eval(const Pattern& p, const Tree& t,
                         EvalScratch* scratch) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t, scratch != nullptr ? scratch : &ThreadScratch())
      .Outputs();
}

std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t, &ThreadScratch()).WeakOutputs();
}

bool IsModel(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return false;
  return !Eval(p, t).empty();
}

bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = Eval(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = EvalWeak(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

}  // namespace xpv
