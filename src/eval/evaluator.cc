#include "eval/evaluator.h"

#include <algorithm>
#include <cassert>

#include "pattern/properties.h"

namespace xpv {

Evaluator::Evaluator(const Pattern& p, const Tree& t)
    : pattern_(p), tree_(t) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  selection_path_ = info.path();

  const size_t np = static_cast<size_t>(p.size());
  const size_t nt = static_cast<size_t>(t.size());
  down_.assign(np * nt, 0);
  sub_.assign(np * nt, 0);

  // Pattern ids are topologically sorted; reverse order visits children
  // before parents. Same for tree ids within the sub() aggregation.
  for (NodeId pn = p.size() - 1; pn >= 0; --pn) {
    const LabelId plabel = p.label(pn);
    char* down_row = &down_[static_cast<size_t>(pn) * nt];
    char* sub_row = &sub_[static_cast<size_t>(pn) * nt];
    for (NodeId v = t.size() - 1; v >= 0; --v) {
      bool ok = plabel == LabelStore::kWildcard || plabel == t.label(v);
      if (ok) {
        for (NodeId c : p.children(pn)) {
          const char* c_down = &down_[static_cast<size_t>(c) * nt];
          const char* c_sub = &sub_[static_cast<size_t>(c) * nt];
          bool found = false;
          if (p.edge(c) == EdgeType::kChild) {
            for (NodeId w : t.children(v)) {
              if (c_down[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          } else {
            for (NodeId w : t.children(v)) {
              if (c_sub[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
      }
      down_row[static_cast<size_t>(v)] = ok ? 1 : 0;
      // sub(p,v) = down(p,v) OR sub(p, child of v); children have larger
      // ids, already computed in this reverse sweep.
      char agg = down_row[static_cast<size_t>(v)];
      if (agg == 0) {
        for (NodeId w : t.children(v)) {
          if (sub_row[static_cast<size_t>(w)] != 0) {
            agg = 1;
            break;
          }
        }
      }
      sub_row[static_cast<size_t>(v)] = agg;
    }
  }
}

bool Evaluator::CanEmbedAt(NodeId pattern_node, NodeId tree_node) const {
  return down_[static_cast<size_t>(pattern_node) *
                   static_cast<size_t>(tree_.size()) +
               static_cast<size_t>(tree_node)] != 0;
}

std::vector<NodeId> Evaluator::RunSelectionSweep(
    std::vector<char> current) const {
  const size_t nt = static_cast<size_t>(tree_.size());
  for (size_t k = 1; k < selection_path_.size(); ++k) {
    NodeId sk = selection_path_[k];
    const char* down_row = &down_[static_cast<size_t>(sk) * nt];
    std::vector<char> next(nt, 0);
    if (pattern_.edge(sk) == EdgeType::kChild) {
      for (NodeId v = 1; v < tree_.size(); ++v) {
        if (down_row[static_cast<size_t>(v)] != 0 &&
            current[static_cast<size_t>(tree_.parent(v))] != 0) {
          next[static_cast<size_t>(v)] = 1;
        }
      }
    } else {
      // reach[v] = some proper ancestor of v is in `current`.
      std::vector<char> reach(nt, 0);
      for (NodeId v = 1; v < tree_.size(); ++v) {
        NodeId par = tree_.parent(v);
        reach[static_cast<size_t>(v)] =
            (current[static_cast<size_t>(par)] != 0 ||
             reach[static_cast<size_t>(par)] != 0)
                ? 1
                : 0;
        if (reach[static_cast<size_t>(v)] != 0 &&
            down_row[static_cast<size_t>(v)] != 0) {
          next[static_cast<size_t>(v)] = 1;
        }
      }
    }
    current.swap(next);
  }
  std::vector<NodeId> outputs;
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (current[static_cast<size_t>(v)] != 0) outputs.push_back(v);
  }
  return outputs;
}

std::vector<NodeId> Evaluator::OutputsAnchoredAt(NodeId anchor) const {
  std::vector<char> initial(static_cast<size_t>(tree_.size()), 0);
  if (CanEmbedAt(selection_path_[0], anchor)) {
    initial[static_cast<size_t>(anchor)] = 1;
  }
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Evaluator::WeakOutputs() const {
  const size_t nt = static_cast<size_t>(tree_.size());
  NodeId s0 = selection_path_[0];
  const char* down_row = &down_[static_cast<size_t>(s0) * nt];
  std::vector<char> initial(down_row, down_row + nt);
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Eval(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).Outputs();
}

std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).WeakOutputs();
}

bool IsModel(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return false;
  return !Eval(p, t).empty();
}

bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = Eval(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = EvalWeak(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

}  // namespace xpv
