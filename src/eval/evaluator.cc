#include "eval/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pattern/properties.h"

namespace xpv {

void EvalScratch::ComputeRow(NodeId v) {
  const Tree& t = *tree_;
  // Word-parallel child-witness join: one OR per tree child accumulates,
  // for every pattern node at once, whether its subtree embeds at a child
  // (child_or) or anywhere strictly below v (sub_or).
  ZeroRow(child_or_.data(), words_);
  ZeroRow(sub_or_.data(), words_);
  for (NodeId w : t.children(v)) {
    OrRow(child_or_.data(), down_.row(w), words_);
    OrRow(sub_or_.data(), sub_.row(w), words_);
  }

  // Candidates by label, then per candidate two subset tests replace the
  // per-child scan of the naive kernel.
  BitWord* down_row = down_.row(v);
  const BitWord* cand = masks_.CandidateRow(t.label(v));
  std::copy(cand, cand + words_, down_row);
  for (int wi = 0; wi < words_; ++wi) {
    // Leaf pattern nodes have no witness requirements — only candidates
    // with children need the subset tests.
    BitWord pending = down_row[wi] & masks_.has_req()[wi];
    while (pending != 0) {
      const int b = std::countr_zero(pending);
      pending &= pending - 1;
      const NodeId q = static_cast<NodeId>(wi * kBitWordBits + b);
      if (!ContainsAllBits(child_or_.data(), masks_.need_child(q), words_) ||
          !ContainsAllBits(sub_or_.data(), masks_.need_desc(q), words_)) {
        down_row[wi] &= ~(BitWord{1} << b);
      }
    }
  }

  BitWord* sub_row = sub_.row(v);
  for (int wi = 0; wi < words_; ++wi) {
    sub_row[wi] = down_row[wi] | sub_or_[wi];
  }
}

void EvalScratch::Compute(const Pattern& p, const Tree& t,
                          int row_capacity_hint) {
  assert(!p.IsEmpty());
  pattern_ = &p;
  tree_ = &t;
  masks_.Build(p);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  const int rows = std::max(t.size(), row_capacity_hint);
  down_.Reset(rows, p.size());
  sub_.Reset(rows, p.size());
  // Tree ids are topologically sorted; reverse order visits children first.
  for (NodeId v = t.size() - 1; v >= 0; --v) ComputeRow(v);
}

void EvalScratch::ComputeAnchored(const Pattern& p, const Tree& t,
                                  const std::vector<NodeId>& anchors) {
  assert(!p.IsEmpty());
  pattern_ = &p;
  tree_ = &t;
  masks_.Build(p);
  words_ = masks_.words();
  if (static_cast<int>(child_or_.size()) < words_) {
    child_or_.resize(static_cast<size_t>(words_));
    sub_or_.resize(static_cast<size_t>(words_));
  }
  down_.ResizeNoZero(t.size(), p.size());
  sub_.ResizeNoZero(t.size(), p.size());

  // Collect the union of the anchor subtrees (anchors may be nested; the
  // visited row deduplicates). The union is closed under tree children, so
  // computing exactly these rows children-first keeps every row that
  // `ComputeRow` consults valid.
  const int tree_words = BitWordsFor(t.size());
  if (static_cast<int>(visited_.size()) < tree_words) {
    visited_.resize(static_cast<size_t>(tree_words));
  }
  std::fill_n(visited_.begin(), static_cast<size_t>(tree_words), 0);
  anchored_nodes_.clear();
  dfs_stack_.clear();
  for (NodeId a : anchors) dfs_stack_.push_back(a);
  while (!dfs_stack_.empty()) {
    const NodeId v = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (TestBit(visited_.data(), v)) continue;
    SetBit(visited_.data(), v);
    anchored_nodes_.push_back(v);
    for (NodeId w : t.children(v)) dfs_stack_.push_back(w);
  }
  // Children have larger ids than their parents; decreasing id order is
  // children-first.
  std::sort(anchored_nodes_.begin(), anchored_nodes_.end(),
            std::greater<NodeId>());
  for (NodeId v : anchored_nodes_) ComputeRow(v);
}

void EvalScratch::Update(const Tree& t, NodeId suffix_start,
                         const std::vector<NodeId>& dirty_prefix_desc) {
  assert(pattern_ != nullptr);
  tree_ = &t;
  if (t.size() > down_.rows()) {
    // Grow preserving the prefix rows (suffix rows are rewritten below).
    const int np = pattern_->size();
    BitMatrix grown;
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(down_.row(v), down_.row(v) + words_, grown.row(v));
    }
    std::swap(down_, grown);
    grown.Reset(t.size(), np);
    for (NodeId v = 0; v < suffix_start; ++v) {
      std::copy(sub_.row(v), sub_.row(v) + words_, grown.row(v));
    }
    std::swap(sub_, grown);
  }
  for (NodeId v = t.size() - 1; v >= suffix_start; --v) ComputeRow(v);
  for (NodeId v : dirty_prefix_desc) {
    assert(v < suffix_start);
    ComputeRow(v);
  }
}

Evaluator::Evaluator(const Pattern& p, const Tree& t)
    : pattern_(p), tree_(t) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  selection_path_ = info.path();
  scratch_.Compute(p, t);
}

Evaluator::Evaluator(const Pattern& p, const Tree& t,
                     const std::vector<NodeId>& anchors)
    : pattern_(p), tree_(t), anchored_(true) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  selection_path_ = info.path();
  scratch_.ComputeAnchored(p, t, anchors);
}

std::vector<NodeId> Evaluator::RunSelectionSweep(
    std::vector<BitWord> current) const {
  // The U_k sets are bit rows over tree nodes. Each step runs in one of
  // two modes:
  //  - *sparse*: iterate only the set bits of the frontier — children for
  //    a child edge, a depth-first subtree walk for a descendant edge.
  //    Sweeps anchored at a few small subtrees (the materialized-view
  //    serving path) never touch the rest of the document.
  //  - *linear*: one pass over all nodes in id order with word-packed
  //    reach bits — dense frontiers (root-anchored or weak evaluation
  //    over large documents) keep the old sweep's locality at an eighth
  //    of the memory traffic.
  // Child edges pick by frontier popcount (their sparse cost is bounded by
  // the frontier's child count); descendant edges go sparse only on
  // anchored evaluators, whose subtree union bounds the walk.
  const int nt = tree_.size();
  const int words = static_cast<int>(current.size());
  std::vector<BitWord> next(static_cast<size_t>(words));
  std::vector<BitWord> reach;   // Descendant-step reached marker (lazy).
  std::vector<NodeId> stack;    // Descendant-step DFS scratch.
  for (size_t k = 1; k < selection_path_.size(); ++k) {
    if (!AnyBit(current.data(), words)) return {};
    const NodeId sk = selection_path_[k];
    ZeroRow(next.data(), words);
    if (pattern_.edge(sk) == EdgeType::kChild) {
      // Anchored sweeps are always sparse (no popcount pass needed).
      int frontier = 0;
      if (!anchored_) {
        for (int wi = 0; wi < words; ++wi) {
          frontier += std::popcount(current[static_cast<size_t>(wi)]);
        }
      }
      if (anchored_ || frontier <= nt / (2 * kBitWordBits)) {
        for (int wi = 0; wi < words; ++wi) {
          BitWord w = current[static_cast<size_t>(wi)];
          while (w != 0) {
            const NodeId u =
                static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w));
            w &= w - 1;
            for (NodeId v : tree_.children(u)) {
              if (scratch_.Down(v, sk)) SetBit(next.data(), v);
            }
          }
        }
      } else {
        for (NodeId v = 1; v < nt; ++v) {
          if (TestBit(current.data(), tree_.parent(v)) &&
              scratch_.Down(v, sk)) {
            SetBit(next.data(), v);
          }
        }
      }
    } else if (anchored_) {
      // Descendants of the current set: depth-first from each member, with
      // a reached-marker row so overlapping subtrees are walked once.
      // Everything popped from the stack is a proper descendant of some
      // member and thus next-eligible — including members nested under
      // other members (the linear pass's `reach`). Descent below a member
      // is left to its own source iteration, so each node is pushed (and
      // its children scanned) at most once per level.
      reach.assign(static_cast<size_t>(words), 0);
      for (int wi = 0; wi < words; ++wi) {
        BitWord w = current[static_cast<size_t>(wi)];
        while (w != 0) {
          const NodeId u =
              static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w));
          w &= w - 1;
          for (NodeId v : tree_.children(u)) stack.push_back(v);
          while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            if (scratch_.Down(v, sk)) SetBit(next.data(), v);
            if (TestBit(reach.data(), v) || TestBit(current.data(), v)) {
              continue;  // Subtree covered (here or by v's own iteration).
            }
            SetBit(reach.data(), v);
            for (NodeId c : tree_.children(v)) stack.push_back(c);
          }
        }
      }
    } else {
      // Linear reach pass: reach(v) = some proper ancestor of v is in the
      // frontier; ids are topological so one forward scan suffices. The
      // propagation is branchless — only the (rare) frontier-and-down hits
      // branch.
      reach.assign(static_cast<size_t>(words), 0);
      for (NodeId v = 1; v < nt; ++v) {
        const NodeId par = tree_.parent(v);
        const BitWord r = ((current[static_cast<size_t>(par >> 6)] |
                            reach[static_cast<size_t>(par >> 6)]) >>
                           (par & 63)) &
                          1;
        reach[static_cast<size_t>(v >> 6)] |= r << (v & 63);
        if (r != 0 && scratch_.Down(v, sk)) SetBit(next.data(), v);
      }
    }
    current.swap(next);
  }
  std::vector<NodeId> outputs;
  for (int wi = 0; wi < words; ++wi) {
    BitWord w = current[static_cast<size_t>(wi)];
    while (w != 0) {
      outputs.push_back(
          static_cast<NodeId>(wi * kBitWordBits + std::countr_zero(w)));
      w &= w - 1;
    }
  }
  return outputs;
}

std::vector<NodeId> Evaluator::OutputsAnchoredAt(NodeId anchor) const {
  std::vector<BitWord> initial(
      static_cast<size_t>(BitWordsFor(tree_.size())));
  if (CanEmbedAt(selection_path_[0], anchor)) {
    SetBit(initial.data(), anchor);
  }
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Evaluator::WeakOutputs() const {
  NodeId s0 = selection_path_[0];
  std::vector<BitWord> initial(
      static_cast<size_t>(BitWordsFor(tree_.size())));
  for (NodeId v = 0; v < tree_.size(); ++v) {
    if (scratch_.Down(v, s0)) SetBit(initial.data(), v);
  }
  return RunSelectionSweep(std::move(initial));
}

std::vector<NodeId> Eval(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).Outputs();
}

std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return Evaluator(p, t).WeakOutputs();
}

bool IsModel(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return false;
  return !Eval(p, t).empty();
}

bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = Eval(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = EvalWeak(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

}  // namespace xpv
