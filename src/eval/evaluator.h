#ifndef XPV_EVAL_EVALUATOR_H_
#define XPV_EVAL_EVALUATOR_H_

#include <vector>

#include "containment/bitmatrix.h"
#include "containment/pattern_masks.h"
#include "pattern/pattern.h"
#include "util/arena.h"
#include "xml/tree.h"

namespace xpv {

/// The bit-parallel embedding kernel: computes, for one (pattern, tree)
/// pair, the DP tables
///
///   down(q,v) = "the pattern subtree rooted at q embeds with q -> v"
///   sub(q,v)  = "down(q,w) holds for some w in the tree subtree of v"
///
/// The tables are stored *transposed* relative to the naive formulation:
/// one `BitMatrix` row per tree node v, one bit per pattern node q. This
/// makes the inner child-witness join word-parallel: a single OR of the
/// child rows answers "which pattern subtrees embed at some child of v"
/// for every pattern node at once, and per pattern node the join reduces
/// to two word-wise subset tests against the shared `PatternMasks`.
///
/// The object owns all buffers and reuses them across `Compute` calls
/// (no allocation once warm), and `Update` recomputes only the rows whose
/// tree subtrees changed — the scratch-reuse and incremental paths of the
/// canonical-model containment loop. `ComputeAnchored` restricts the DP to
/// the union of given subtrees, the fast path behind answering queries
/// from materialized views (cost proportional to the view result, not the
/// document).
class EvalScratch {
 public:
  EvalScratch() = default;

  EvalScratch(const EvalScratch&) = delete;
  EvalScratch& operator=(const EvalScratch&) = delete;

  /// Full bottom-up DP over all tree nodes. `p` must be nonempty; `p` and
  /// `t` must stay alive until the next Compute. `row_capacity_hint`
  /// pre-sizes the tables for trees that will later grow via `Update`.
  void Compute(const Pattern& p, const Tree& t, int row_capacity_hint = 0);

  /// DP restricted to the union of the subtrees rooted at `anchors`: only
  /// those rows are computed (children-first), all other rows hold garbage
  /// and must not be consulted. O(|union| * |p| / 64) — independent of the
  /// document size outside the anchored subtrees.
  void ComputeAnchored(const Pattern& p, const Tree& t,
                       const std::vector<NodeId>& anchors);

  /// Packed multi-pattern DP: all `count` (nonempty) patterns share ONE
  /// bottom-up pass over `t`. Pattern i's node q lives at bit
  /// `offset(i) + q` of every row, offset(i) = prefix sum of the earlier
  /// patterns' sizes (see `PatternMasks::BuildMany`); `Down`/`Sub` take
  /// these packed bit ids. The row kernel is mask-driven and therefore
  /// pattern-count-agnostic — for small patterns the per-row fixed costs
  /// (child iteration, label lookup) are paid once for the whole group
  /// instead of once per pattern. `Update` is not supported after a
  /// multi-pattern compute.
  void ComputeMany(const Pattern* const* patterns, size_t count,
                   const Tree& t);

  /// `ComputeMany` restricted to the union of the subtrees rooted at
  /// `anchors` (same row validity contract as `ComputeAnchored`).
  void ComputeAnchoredMany(const Pattern* const* patterns, size_t count,
                           const Tree& t, const std::vector<NodeId>& anchors);

  /// Incremental recompute after the tree changed: every node with id
  /// >= `suffix_start` is new or rebuilt (the tree may have grown or
  /// shrunk), and `dirty_prefix_desc` lists the surviving nodes whose
  /// subtrees changed (ancestors of the splice points), in strictly
  /// decreasing id order. All other rows are reused unchanged. The
  /// pattern must be the one from the last `Compute`.
  void Update(const Tree& t, NodeId suffix_start,
              const std::vector<NodeId>& dirty_prefix_desc);

  /// Permutes the DP rows per a deletion-compaction remap table (old id ->
  /// new id, `kNoNode` = deleted): row contents carry no tree ids, so a
  /// surviving node's rows stay valid at its new index. The remap must be
  /// order-preserving (new id <= old id for survivors — what
  /// `Tree::ApplyDelta` produces), which makes the move safe in place.
  /// Entries past `old_row_count` (nodes inserted by the same delta) are
  /// ignored; their rows are computed by the following `Update`.
  void RemapRows(const std::vector<NodeId>& remap, NodeId old_row_count);

  /// Estimated heap bytes of the DP tables (budget accounting).
  size_t EstimatedBytes() const {
    return static_cast<size_t>(down_.rows()) *
           static_cast<size_t>(down_.words_per_row()) * sizeof(BitWord) * 2;
  }

  /// down(q,v).
  bool Down(NodeId tree_node, NodeId pattern_node) const {
    return down_.Test(tree_node, pattern_node);
  }

  /// sub(q,v).
  bool Sub(NodeId tree_node, NodeId pattern_node) const {
    return sub_.Test(tree_node, pattern_node);
  }

  /// The per-kernel scratch arena. `ComputeAnchored` and the owning
  /// `Evaluator`'s selection sweeps draw their per-call scratch from it
  /// and reset it on entry — pointers into the arena never outlive one
  /// call. Mutable because sweeps run on logically-const evaluators; the
  /// kernel object (and hence its arena) is confined to one thread.
  Arena& scratch_arena() const { return arena_; }

 private:
  void ComputeRow(NodeId v);

  /// The anchored-subset row computation shared by `ComputeAnchored` and
  /// `ComputeAnchoredMany` (masks and matrices already set up).
  void ComputeAnchoredRows(const Tree& t, const std::vector<NodeId>& anchors);

  const Pattern* pattern_ = nullptr;
  const Tree* tree_ = nullptr;
  int words_ = 0;  // Words per pattern-bit row.

  BitMatrix down_;  // rows = tree nodes, cols = pattern nodes.
  BitMatrix sub_;

  // Per-pattern label/edge masks (shared helper, rebuilt by Compute).
  PatternMasks masks_;

  // Per-row gather scratch.
  std::vector<BitWord> child_or_;
  std::vector<BitWord> sub_or_;

  // Per-call scratch storage (ComputeAnchored walks, selection sweeps).
  mutable Arena arena_;
};

namespace internal {
/// One selection-sweep step: the DP bit to test — a pattern-node bit id,
/// already offset when the tables pack several patterns — and the edge
/// leading into it (unused for the first step, which only seeds the
/// frontier).
struct SweepStep {
  NodeId bit;
  EdgeType edge;
};
}  // namespace internal

/// Decides embedding questions for one (pattern, tree) pair
/// (Definition 2.1) and computes the query results P(t) and P^w(t).
///
/// A subtree of t is identified by its root node, so P(t) is returned as a
/// sorted vector of tree node ids o such that some embedding maps out(P)
/// to o.
///
/// Algorithm: the bit-parallel `EvalScratch` kernel computes down/sub
/// (pass 1), then a placement sweep along the selection path: U_0 =
/// anchors, and U_k = nodes v with down(s_k, v) whose parent (resp. some
/// proper ancestor) lies in U_{k-1}. The output set is U_d. Independence
/// of branches makes this exact. The U_k sets are bit rows over tree
/// nodes; sparse frontiers are stepped by iterating set bits only (so
/// anchored sweeps over small subtrees never scan the whole document),
/// dense ones by a linear word-packed pass. Total cost O(|P| * |t|) with
/// word-packed constants.
class Evaluator {
 public:
  /// Builds the DP tables over the full document. `p` must be nonempty;
  /// both must outlive this. A non-null `scratch` is borrowed instead of
  /// the internal kernel: its buffers (and their capacity) are reused, so
  /// a caller evaluating many patterns against comparable trees pays the
  /// DP-table allocation once, not per evaluation. The borrowed kernel is
  /// recomputed from scratch — no state carries over — and must outlive
  /// this evaluator and stay confined to its thread.
  explicit Evaluator(const Pattern& p, const Tree& t,
                     EvalScratch* scratch = nullptr);

  /// Builds the DP tables only over the union of the subtrees rooted at
  /// `anchors` (see `EvalScratch::ComputeAnchored`). Only
  /// `OutputsAnchoredAt(a)` / `OutputsAnchoredAtAll(as)` for anchors
  /// inside that union are valid on an evaluator constructed this way;
  /// `Outputs`/`WeakOutputs` are not. `scratch` as above.
  Evaluator(const Pattern& p, const Tree& t,
            const std::vector<NodeId>& anchors,
            EvalScratch* scratch = nullptr);

  /// down(p,v): can the pattern subtree rooted at `pattern_node` embed with
  /// pattern_node ↦ tree_node?
  bool CanEmbedAt(NodeId pattern_node, NodeId tree_node) const {
    return scratch_->Down(tree_node, pattern_node);
  }

  /// P(t^anchor): outputs of embeddings that map root(P) to `anchor`
  /// (i.e. the pattern applied to the subtree of t rooted at `anchor`).
  std::vector<NodeId> OutputsAnchoredAt(NodeId anchor) const;

  /// Union over `anchors` of P(t^anchor), sorted and deduplicated. The
  /// selection sweep distributes over unions of its initial frontier
  /// (each step maps a node set to the union of its members' images), so
  /// seeding ONE sweep with every anchor computes exactly
  /// ∪_a OutputsAnchoredAt(a) — the per-step frontier bookkeeping and
  /// the result materialization are paid once instead of once per
  /// anchor. This is the serving path for applying a rewriting to a
  /// materialized view's stored outputs.
  std::vector<NodeId> OutputsAnchoredAtAll(
      const std::vector<NodeId>& anchors) const;

  /// P(t): outputs of (root-preserving) embeddings.
  std::vector<NodeId> Outputs() const { return OutputsAnchoredAt(tree_.root()); }

  /// P^w(t): outputs of weak embeddings (root mapped anywhere).
  std::vector<NodeId> WeakOutputs() const;

 private:
  /// Runs the placement sweep from the frontier row `current` (an
  /// arena-allocated row over tree nodes, `words` long, consumed in
  /// place). Further sweep scratch comes from the same arena.
  std::vector<NodeId> RunSelectionSweep(BitWord* current, int words) const;

  const Pattern& pattern_;
  const Tree& tree_;
  std::vector<internal::SweepStep> steps_;  // Selection path, root first.
  /// The bit kernel: `owned_scratch_` unless the caller lent one.
  EvalScratch owned_scratch_;
  EvalScratch* scratch_;
  bool anchored_ = false;  // Anchored-subset DP (sparse sweeps only).
};

/// Persistent root-anchored evaluation of ONE pattern against a document
/// that changes by deltas — the evaluator leg of incremental view
/// maintenance. Construction runs the full bottom-up DP and selection
/// sweep once; `ApplyUpdate` then consumes a `TreeDeltaReport` and
/// re-derives only what the delta touched: surviving rows are remapped
/// (deletes) or reused verbatim, the DP recomputes the inserted suffix
/// plus the splice points' ancestor chains, and one selection sweep
/// refreshes the output set. Cost per update is O(|dirty region| * |p|/64)
/// DP work plus a sweep, instead of a full re-materialization.
///
/// Pattern and tree must outlive this object and updates must mirror the
/// tree's actual mutation history (every `Tree::ApplyDelta` report, in
/// order). Confine to one thread (or guard externally — the serving facade
/// holds the document's exclusive stripe across `ApplyUpdate`).
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const Pattern& p, const Tree& t);

  /// Folds one applied delta into the DP state and recomputes `outputs()`.
  void ApplyUpdate(const Tree& t, const TreeDeltaReport& report);

  /// P(t) for the current tree state: sorted root-anchored outputs,
  /// identical to `Evaluator(p, t).Outputs()`.
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Estimated heap bytes of the retained DP state (budget accounting).
  size_t EstimatedBytes() const {
    return scratch_.EstimatedBytes() + outputs_.capacity() * sizeof(NodeId);
  }

 private:
  void RecomputeOutputs(const Tree& t);

  EvalScratch scratch_;  // Holds the pattern/masks from construction.
  std::vector<internal::SweepStep> steps_;
  std::vector<NodeId> outputs_;
};

/// Evaluates SEVERAL patterns against one tree for the price of one DP
/// pass (`EvalScratch::ComputeMany`): the patterns are packed into one bit
/// space, the bottom-up pass fills every pattern's down/sub tables at
/// once, and each pattern then runs its own (cheap, frontier-bounded)
/// selection sweep over the shared tables. For the small patterns of a
/// query workload the whole group usually fits in one machine word, so the
/// group costs roughly ONE single-pattern evaluation instead of N — the
/// cold-path batching primitive behind `ViewCache`'s miss fallbacks and
/// `MaterializedView::ApplyMany`.
///
/// All patterns must be nonempty and, like the tree, outlive this object.
/// `scratch` follows the `Evaluator` borrowing contract.
class MultiEvaluator {
 public:
  /// Full-document DP for all patterns (one pass).
  MultiEvaluator(const std::vector<const Pattern*>& patterns, const Tree& t,
                 EvalScratch* scratch = nullptr);

  /// DP restricted to the union of the subtrees rooted at `anchors`; only
  /// the anchored entry point is valid on an instance built this way.
  MultiEvaluator(const std::vector<const Pattern*>& patterns, const Tree& t,
                 const std::vector<NodeId>& anchors,
                 EvalScratch* scratch = nullptr);

  /// P_i(t) — root-anchored outputs of pattern `i`, identical to
  /// `Evaluator(p_i, t).Outputs()`.
  std::vector<NodeId> Outputs(size_t i) const;

  /// ∪_a P_i(t^a) over `anchors`, identical to
  /// `Evaluator(p_i, t, anchors).OutputsAnchoredAtAll(anchors)` — the
  /// anchors must be (a subset of) the ones the instance was built with.
  std::vector<NodeId> OutputsAnchoredAtAll(
      size_t i, const std::vector<NodeId>& anchors) const;

 private:
  const Tree& tree_;
  std::vector<std::vector<internal::SweepStep>> steps_;  // Per pattern.
  EvalScratch owned_scratch_;
  EvalScratch* scratch_;
  bool anchored_ = false;
};

/// P(t) for a (possibly empty) pattern. A non-null `scratch` is lent to
/// the evaluator (see the `Evaluator` constructor) so repeated calls
/// reuse the DP tables' storage; with the default a thread-local scratch
/// is used, so every call after a thread's first evaluates with warm
/// buffers (the free evaluation entry points never heap-allocate beyond
/// the returned vector once warm).
std::vector<NodeId> Eval(const Pattern& p, const Tree& t,
                         EvalScratch* scratch = nullptr);

/// P^w(t) for a (possibly empty) pattern.
std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t);

/// True if `t` is a model of `p` (some embedding of p in t exists).
[[nodiscard]] bool IsModel(const Pattern& p, const Tree& t);

/// True if o ∈ P(t).
[[nodiscard]] bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o);

/// True if o ∈ P^w(t).
[[nodiscard]] bool WeaklyProducesOutput(const Pattern& p, const Tree& t,
                                        NodeId o);

}  // namespace xpv

#endif  // XPV_EVAL_EVALUATOR_H_
