#ifndef XPV_EVAL_EVALUATOR_H_
#define XPV_EVAL_EVALUATOR_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// Decides embedding questions for one (pattern, tree) pair
/// (Definition 2.1) and computes the query results P(t) and P^w(t).
///
/// A subtree of t is identified by its root node, so P(t) is returned as a
/// sorted vector of tree node ids o such that some embedding maps out(P)
/// to o.
///
/// Algorithm: two-pass dynamic programming.
///   1. Bottom-up over (pattern node p, tree node v): down(p,v) = "the
///      pattern subtree rooted at p embeds into t with p ↦ v". Branches of
///      p are independent, so down(p,v) holds iff the label matches and
///      every pattern child c has a witness below v (a child of v for
///      child edges, a proper descendant for descendant edges; the latter
///      is answered by the auxiliary table sub(p,v) = "down(p,w) for some
///      w in the subtree of v").
///   2. A placement sweep along the selection path: U_0 = anchors, and
///      U_k = nodes v with down(s_k, v) whose parent (resp. some proper
///      ancestor) lies in U_{k-1}. The output set is U_d. Independence of
///      branches makes this exact.
/// Total cost O(|P| * |t|).
class Evaluator {
 public:
  /// Builds the DP tables. `p` must be nonempty; both must outlive this.
  Evaluator(const Pattern& p, const Tree& t);

  /// down(p,v): can the pattern subtree rooted at `pattern_node` embed with
  /// pattern_node ↦ tree_node?
  bool CanEmbedAt(NodeId pattern_node, NodeId tree_node) const;

  /// P(t^anchor): outputs of embeddings that map root(P) to `anchor`
  /// (i.e. the pattern applied to the subtree of t rooted at `anchor`).
  std::vector<NodeId> OutputsAnchoredAt(NodeId anchor) const;

  /// P(t): outputs of (root-preserving) embeddings.
  std::vector<NodeId> Outputs() const { return OutputsAnchoredAt(tree_.root()); }

  /// P^w(t): outputs of weak embeddings (root mapped anywhere).
  std::vector<NodeId> WeakOutputs() const;

 private:
  std::vector<NodeId> RunSelectionSweep(std::vector<char> current) const;

  const Pattern& pattern_;
  const Tree& tree_;
  std::vector<NodeId> selection_path_;
  // down_[p * |t| + v]; sub_ likewise.
  std::vector<char> down_;
  std::vector<char> sub_;
};

/// P(t) for a (possibly empty) pattern.
std::vector<NodeId> Eval(const Pattern& p, const Tree& t);

/// P^w(t) for a (possibly empty) pattern.
std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t);

/// True if `t` is a model of `p` (some embedding of p in t exists).
bool IsModel(const Pattern& p, const Tree& t);

/// True if o ∈ P(t).
bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o);

/// True if o ∈ P^w(t).
bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o);

}  // namespace xpv

#endif  // XPV_EVAL_EVALUATOR_H_
