#ifndef XPV_EVAL_EVALUATOR_H_
#define XPV_EVAL_EVALUATOR_H_

#include <vector>

#include "containment/bitmatrix.h"
#include "containment/pattern_masks.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// The bit-parallel embedding kernel: computes, for one (pattern, tree)
/// pair, the DP tables
///
///   down(q,v) = "the pattern subtree rooted at q embeds with q -> v"
///   sub(q,v)  = "down(q,w) holds for some w in the tree subtree of v"
///
/// The tables are stored *transposed* relative to the naive formulation:
/// one `BitMatrix` row per tree node v, one bit per pattern node q. This
/// makes the inner child-witness join word-parallel: a single OR of the
/// child rows answers "which pattern subtrees embed at some child of v"
/// for every pattern node at once, and per pattern node the join reduces
/// to two word-wise subset tests against the shared `PatternMasks`.
///
/// The object owns all buffers and reuses them across `Compute` calls
/// (no allocation once warm), and `Update` recomputes only the rows whose
/// tree subtrees changed — the scratch-reuse and incremental paths of the
/// canonical-model containment loop. `ComputeAnchored` restricts the DP to
/// the union of given subtrees, the fast path behind answering queries
/// from materialized views (cost proportional to the view result, not the
/// document).
class EvalScratch {
 public:
  EvalScratch() = default;

  EvalScratch(const EvalScratch&) = delete;
  EvalScratch& operator=(const EvalScratch&) = delete;

  /// Full bottom-up DP over all tree nodes. `p` must be nonempty; `p` and
  /// `t` must stay alive until the next Compute. `row_capacity_hint`
  /// pre-sizes the tables for trees that will later grow via `Update`.
  void Compute(const Pattern& p, const Tree& t, int row_capacity_hint = 0);

  /// DP restricted to the union of the subtrees rooted at `anchors`: only
  /// those rows are computed (children-first), all other rows hold garbage
  /// and must not be consulted. O(|union| * |p| / 64) — independent of the
  /// document size outside the anchored subtrees.
  void ComputeAnchored(const Pattern& p, const Tree& t,
                       const std::vector<NodeId>& anchors);

  /// Incremental recompute after the tree changed: every node with id
  /// >= `suffix_start` is new or rebuilt (the tree may have grown or
  /// shrunk), and `dirty_prefix_desc` lists the surviving nodes whose
  /// subtrees changed (ancestors of the splice points), in strictly
  /// decreasing id order. All other rows are reused unchanged. The
  /// pattern must be the one from the last `Compute`.
  void Update(const Tree& t, NodeId suffix_start,
              const std::vector<NodeId>& dirty_prefix_desc);

  /// down(q,v).
  bool Down(NodeId tree_node, NodeId pattern_node) const {
    return down_.Test(tree_node, pattern_node);
  }

  /// sub(q,v).
  bool Sub(NodeId tree_node, NodeId pattern_node) const {
    return sub_.Test(tree_node, pattern_node);
  }

 private:
  void ComputeRow(NodeId v);

  const Pattern* pattern_ = nullptr;
  const Tree* tree_ = nullptr;
  int words_ = 0;  // Words per pattern-bit row.

  BitMatrix down_;  // rows = tree nodes, cols = pattern nodes.
  BitMatrix sub_;

  // Per-pattern label/edge masks (shared helper, rebuilt by Compute).
  PatternMasks masks_;

  // Per-row gather scratch.
  std::vector<BitWord> child_or_;
  std::vector<BitWord> sub_or_;

  // ComputeAnchored scratch.
  std::vector<BitWord> visited_;
  std::vector<NodeId> anchored_nodes_;
  std::vector<NodeId> dfs_stack_;
};

/// Decides embedding questions for one (pattern, tree) pair
/// (Definition 2.1) and computes the query results P(t) and P^w(t).
///
/// A subtree of t is identified by its root node, so P(t) is returned as a
/// sorted vector of tree node ids o such that some embedding maps out(P)
/// to o.
///
/// Algorithm: the bit-parallel `EvalScratch` kernel computes down/sub
/// (pass 1), then a placement sweep along the selection path: U_0 =
/// anchors, and U_k = nodes v with down(s_k, v) whose parent (resp. some
/// proper ancestor) lies in U_{k-1}. The output set is U_d. Independence
/// of branches makes this exact. The U_k sets are bit rows over tree
/// nodes; sparse frontiers are stepped by iterating set bits only (so
/// anchored sweeps over small subtrees never scan the whole document),
/// dense ones by a linear word-packed pass. Total cost O(|P| * |t|) with
/// word-packed constants.
class Evaluator {
 public:
  /// Builds the DP tables over the full document. `p` must be nonempty;
  /// both must outlive this.
  Evaluator(const Pattern& p, const Tree& t);

  /// Builds the DP tables only over the union of the subtrees rooted at
  /// `anchors` (see `EvalScratch::ComputeAnchored`). Only
  /// `OutputsAnchoredAt(a)` for `a` inside that union is valid on an
  /// evaluator constructed this way; `Outputs`/`WeakOutputs` are not.
  Evaluator(const Pattern& p, const Tree& t,
            const std::vector<NodeId>& anchors);

  /// down(p,v): can the pattern subtree rooted at `pattern_node` embed with
  /// pattern_node ↦ tree_node?
  bool CanEmbedAt(NodeId pattern_node, NodeId tree_node) const {
    return scratch_.Down(tree_node, pattern_node);
  }

  /// P(t^anchor): outputs of embeddings that map root(P) to `anchor`
  /// (i.e. the pattern applied to the subtree of t rooted at `anchor`).
  std::vector<NodeId> OutputsAnchoredAt(NodeId anchor) const;

  /// P(t): outputs of (root-preserving) embeddings.
  std::vector<NodeId> Outputs() const { return OutputsAnchoredAt(tree_.root()); }

  /// P^w(t): outputs of weak embeddings (root mapped anywhere).
  std::vector<NodeId> WeakOutputs() const;

 private:
  std::vector<NodeId> RunSelectionSweep(std::vector<BitWord> current) const;

  const Pattern& pattern_;
  const Tree& tree_;
  std::vector<NodeId> selection_path_;
  EvalScratch scratch_;
  bool anchored_ = false;  // Anchored-subset DP (sparse sweeps only).
};

/// P(t) for a (possibly empty) pattern.
std::vector<NodeId> Eval(const Pattern& p, const Tree& t);

/// P^w(t) for a (possibly empty) pattern.
std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t);

/// True if `t` is a model of `p` (some embedding of p in t exists).
bool IsModel(const Pattern& p, const Tree& t);

/// True if o ∈ P(t).
bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o);

/// True if o ∈ P^w(t).
bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o);

}  // namespace xpv

#endif  // XPV_EVAL_EVALUATOR_H_
