#include "eval/reference.h"

#include <algorithm>
#include <cassert>

#include "pattern/canonical.h"
#include "pattern/properties.h"

namespace xpv {
namespace reference {
namespace {

/// The pre-kernel evaluator: down/sub as byte matrices, child witnesses
/// found by scanning each tree child.
class NaiveEvaluator {
 public:
  NaiveEvaluator(const Pattern& p, const Tree& t) : pattern_(p), tree_(t) {
    assert(!p.IsEmpty());
    SelectionInfo info(p);
    selection_path_ = info.path();

    const size_t np = static_cast<size_t>(p.size());
    const size_t nt = static_cast<size_t>(t.size());
    down_.assign(np * nt, 0);
    sub_.assign(np * nt, 0);

    for (NodeId pn = p.size() - 1; pn >= 0; --pn) {
      const LabelId plabel = p.label(pn);
      char* down_row = &down_[static_cast<size_t>(pn) * nt];
      char* sub_row = &sub_[static_cast<size_t>(pn) * nt];
      for (NodeId v = t.size() - 1; v >= 0; --v) {
        bool ok = plabel == LabelStore::kWildcard || plabel == t.label(v);
        if (ok) {
          for (NodeId c : p.children(pn)) {
            const char* c_down = &down_[static_cast<size_t>(c) * nt];
            const char* c_sub = &sub_[static_cast<size_t>(c) * nt];
            bool found = false;
            if (p.edge(c) == EdgeType::kChild) {
              for (NodeId w : t.children(v)) {
                if (c_down[static_cast<size_t>(w)] != 0) {
                  found = true;
                  break;
                }
              }
            } else {
              for (NodeId w : t.children(v)) {
                if (c_sub[static_cast<size_t>(w)] != 0) {
                  found = true;
                  break;
                }
              }
            }
            if (!found) {
              ok = false;
              break;
            }
          }
        }
        down_row[static_cast<size_t>(v)] = ok ? 1 : 0;
        char agg = down_row[static_cast<size_t>(v)];
        if (agg == 0) {
          for (NodeId w : t.children(v)) {
            if (sub_row[static_cast<size_t>(w)] != 0) {
              agg = 1;
              break;
            }
          }
        }
        sub_row[static_cast<size_t>(v)] = agg;
      }
    }
  }

  bool CanEmbedAt(NodeId pattern_node, NodeId tree_node) const {
    return down_[static_cast<size_t>(pattern_node) *
                     static_cast<size_t>(tree_.size()) +
                 static_cast<size_t>(tree_node)] != 0;
  }

  std::vector<NodeId> Outputs() const {
    std::vector<char> initial(static_cast<size_t>(tree_.size()), 0);
    if (CanEmbedAt(selection_path_[0], tree_.root())) {
      initial[static_cast<size_t>(tree_.root())] = 1;
    }
    return RunSelectionSweep(std::move(initial));
  }

  std::vector<NodeId> WeakOutputs() const {
    const size_t nt = static_cast<size_t>(tree_.size());
    NodeId s0 = selection_path_[0];
    const char* down_row = &down_[static_cast<size_t>(s0) * nt];
    std::vector<char> initial(down_row, down_row + nt);
    return RunSelectionSweep(std::move(initial));
  }

 private:
  std::vector<NodeId> RunSelectionSweep(std::vector<char> current) const {
    const size_t nt = static_cast<size_t>(tree_.size());
    for (size_t k = 1; k < selection_path_.size(); ++k) {
      NodeId sk = selection_path_[k];
      const char* down_row = &down_[static_cast<size_t>(sk) * nt];
      std::vector<char> next(nt, 0);
      if (pattern_.edge(sk) == EdgeType::kChild) {
        for (NodeId v = 1; v < tree_.size(); ++v) {
          if (down_row[static_cast<size_t>(v)] != 0 &&
              current[static_cast<size_t>(tree_.parent(v))] != 0) {
            next[static_cast<size_t>(v)] = 1;
          }
        }
      } else {
        std::vector<char> reach(nt, 0);
        for (NodeId v = 1; v < tree_.size(); ++v) {
          NodeId par = tree_.parent(v);
          reach[static_cast<size_t>(v)] =
              (current[static_cast<size_t>(par)] != 0 ||
               reach[static_cast<size_t>(par)] != 0)
                  ? 1
                  : 0;
          if (reach[static_cast<size_t>(v)] != 0 &&
              down_row[static_cast<size_t>(v)] != 0) {
            next[static_cast<size_t>(v)] = 1;
          }
        }
      }
      current.swap(next);
    }
    std::vector<NodeId> outputs;
    for (NodeId v = 0; v < tree_.size(); ++v) {
      if (current[static_cast<size_t>(v)] != 0) outputs.push_back(v);
    }
    return outputs;
  }

  const Pattern& pattern_;
  const Tree& tree_;
  std::vector<NodeId> selection_path_;
  std::vector<char> down_;
  std::vector<char> sub_;
};

}  // namespace

std::vector<NodeId> Eval(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return NaiveEvaluator(p, t).Outputs();
}

std::vector<NodeId> EvalWeak(const Pattern& p, const Tree& t) {
  if (p.IsEmpty()) return {};
  return NaiveEvaluator(p, t).WeakOutputs();
}

bool ProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = Eval(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool WeaklyProducesOutput(const Pattern& p, const Tree& t, NodeId o) {
  if (p.IsEmpty()) return false;
  std::vector<NodeId> outs = EvalWeak(p, t);
  return std::binary_search(outs.begin(), outs.end(), o);
}

bool ExistsPatternHomomorphism(const Pattern& from, const Pattern& to) {
  if (from.IsEmpty() || to.IsEmpty()) return false;
  const size_t nf = static_cast<size_t>(from.size());
  const size_t nt = static_cast<size_t>(to.size());

  std::vector<char> down(nf * nt, 0);
  std::vector<char> sub(nf * nt, 0);

  for (NodeId q = from.size() - 1; q >= 0; --q) {
    const LabelId qlabel = from.label(q);
    char* down_row = &down[static_cast<size_t>(q) * nt];
    char* sub_row = &sub[static_cast<size_t>(q) * nt];
    for (NodeId p = to.size() - 1; p >= 0; --p) {
      bool ok = qlabel == LabelStore::kWildcard || qlabel == to.label(p);
      if (ok && q == from.output() && p != to.output()) ok = false;
      if (ok) {
        for (NodeId c : from.children(q)) {
          const char* c_down = &down[static_cast<size_t>(c) * nt];
          const char* c_sub = &sub[static_cast<size_t>(c) * nt];
          bool found = false;
          if (from.edge(c) == EdgeType::kChild) {
            for (NodeId w : to.children(p)) {
              if (to.edge(w) == EdgeType::kChild &&
                  c_down[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          } else {
            for (NodeId w : to.children(p)) {
              if (c_sub[static_cast<size_t>(w)] != 0) {
                found = true;
                break;
              }
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
      }
      down_row[static_cast<size_t>(p)] = ok ? 1 : 0;
      char agg = down_row[static_cast<size_t>(p)];
      if (agg == 0) {
        for (NodeId w : to.children(p)) {
          if (sub_row[static_cast<size_t>(w)] != 0) {
            agg = 1;
            break;
          }
        }
      }
      sub_row[static_cast<size_t>(p)] = agg;
    }
  }

  return down[static_cast<size_t>(from.root()) * nt +
              static_cast<size_t>(to.root())] != 0;
}

namespace {

int NaiveExpansionBound(const Pattern& p2) { return StarChainLength(p2) + 2; }

bool NaiveCanonicalModelsPass(const Pattern& p1, const Pattern& p2,
                              bool weak) {
  const int bound = NaiveExpansionBound(p2);
  CanonicalModelEnumerator en(p1, bound);
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  while (en.Next(&model)) {
    const bool produced =
        weak ? WeaklyProducesOutput(p2, model.tree, model.output)
             : ProducesOutput(p2, model.tree, model.output);
    if (!produced) return false;
  }
  return true;
}

}  // namespace

bool Contained(const Pattern& p1, const Pattern& p2) {
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) return false;
  return NaiveCanonicalModelsPass(p1, p2, /*weak=*/false);
}

bool WeaklyContained(const Pattern& p1, const Pattern& p2) {
  if (p1.IsEmpty()) return true;
  if (p2.IsEmpty()) return false;
  return NaiveCanonicalModelsPass(p1, p2, /*weak=*/true);
}

}  // namespace reference
}  // namespace xpv
