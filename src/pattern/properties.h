#ifndef XPV_PATTERN_PROPERTIES_H_
#define XPV_PATTERN_PROPERTIES_H_

#include <set>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// Structural facts about a pattern's selection path and node depths
/// (Section 3.1 of the paper).
///
/// The *selection path* of a nonempty pattern is the path from the root to
/// the output node; its nodes are the selection nodes, and the *depth* of the
/// pattern, d, is the number of selection edges. The *k-node* is the
/// selection node at depth k. The depth of an arbitrary node v is the depth
/// of its deepest ancestor on the selection path.
class SelectionInfo {
 public:
  /// Computes the selection info of a nonempty pattern. `pattern` must
  /// outlive this object.
  explicit SelectionInfo(const Pattern& pattern);

  /// Depth d of the pattern = number of selection edges.
  int depth() const { return static_cast<int>(path_.size()) - 1; }

  /// The selection node at depth `k` (0 <= k <= depth()).
  NodeId KNode(int k) const { return path_[static_cast<size_t>(k)]; }

  /// The selection nodes, root first.
  const std::vector<NodeId>& path() const { return path_; }

  /// True if node `n` lies on the selection path.
  bool OnPath(NodeId n) const;

  /// The type of the selection edge entering the k-node (1 <= k <= depth()).
  EdgeType SelectionEdge(int k) const;

  /// Depth of an arbitrary node: the depth of its deepest selection-path
  /// ancestor (Section 3.1).
  int NodeDepth(NodeId n) const { return node_depth_[static_cast<size_t>(n)]; }

  /// Depth of the deepest descendant edge on the selection path, i.e. the
  /// largest k with SelectionEdge(k) == kDescendant; 0 if every selection
  /// edge is a child edge (or depth() == 0).
  int DeepestDescendantSelectionEdge() const;

  /// True if all selection edges in depths [from+1, to] are child edges.
  bool ChildOnlyRange(int from, int to) const;

 private:
  const Pattern& pattern_;
  std::vector<NodeId> path_;
  std::vector<int> node_depth_;
};

/// The set of Σ-labels occurring in the subtree of `p` rooted at `n`
/// (wildcards excluded).
std::set<LabelId> SigmaLabelsInSubtree(const Pattern& p, NodeId n);

/// The set of Σ-labels occurring anywhere in `p`.
std::set<LabelId> SigmaLabels(const Pattern& p);

/// True if the subtree of `p` rooted at `n` is linear (forms a path: every
/// node has at most one child). Used by the GNF/* normal form (Def 5.3).
[[nodiscard]] bool IsLinearSubtree(const Pattern& p, NodeId n);

/// True if the whole pattern is linear.
[[nodiscard]] bool IsLinear(const Pattern& p);

/// The "star length" of the pattern: the maximal number of consecutive
/// *-labeled nodes connected by child edges along any downward path. This
/// drives the expansion bound of the canonical-model containment test
/// (Miklau & Suciu [14]).
int StarChainLength(const Pattern& p);

/// Number of descendant edges in the whole pattern.
int CountDescendantEdges(const Pattern& p);

/// True if `p` uses no wildcard labels (fragment XP^{//,[]}).
[[nodiscard]] bool HasNoWildcard(const Pattern& p);
/// True if `p` uses no descendant edges (fragment XP^{/,[],*}).
[[nodiscard]] bool HasNoDescendantEdge(const Pattern& p);
/// True if `p` has no branching (fragment XP^{//,*}; same as IsLinear).
[[nodiscard]] bool HasNoBranch(const Pattern& p);

/// True if `p` lies in one of the sub-fragments of XP^{//,[],*} for which
/// containment is characterized by homomorphism existence: XP^{//,[]} (no
/// wildcards) or XP^{/,[],*} (no descendant edges), per [14].
///
/// Note: the third PTIME sub-fragment of the paper's Section 1, XP^{//,*}
/// (no branches), has PTIME containment but it is NOT characterized by
/// homomorphisms — the classic equivalent pair a/*//b ≡ a//*/b is linear
/// and admits no homomorphism in either direction — so linear patterns are
/// deliberately excluded here.
[[nodiscard]] bool InHomomorphismFragment(const Pattern& p);

}  // namespace xpv

#endif  // XPV_PATTERN_PROPERTIES_H_
