#ifndef XPV_PATTERN_PATTERN_H_
#define XPV_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/label.h"
#include "xml/tree.h"

namespace xpv {

/// Edge kinds of a tree pattern: `/` (child) and `//` (descendant).
enum class EdgeType : uint8_t { kChild, kDescendant };

/// A tree pattern of the XPath fragment XP^{//,[],*} (Section 2.1):
/// a rooted unordered tree whose labels come from Σ ∪ {*}, whose edges are
/// either child or descendant edges, and which has a designated output node.
///
/// The *empty pattern* Υ — which arises only as the result of composing
/// patterns with incompatible labels (Section 2.3) — is represented by a
/// `Pattern` with zero nodes; see `IsEmpty()`. All other constructors and
/// operations require/produce nonempty patterns.
///
/// Like `Tree`, nodes live in a flat arena addressed by `NodeId`, the root is
/// node 0, and ids are topologically sorted (parents before children).
class Pattern {
 public:
  /// Creates the empty pattern Υ.
  static Pattern Empty() { return Pattern(); }

  /// Creates a single-node pattern; the node is both root and output.
  explicit Pattern(LabelId root_label);

  /// Adds a node labeled `label` under `parent`, connected by an edge of
  /// type `edge`, and returns its id. Does not change the output node.
  NodeId AddChild(NodeId parent, LabelId label, EdgeType edge);

  /// Rewinds this pattern to a single root node labeled `root_label`
  /// (root = output, like the single-node constructor), keeping all heap
  /// buffers — including the per-node child lists — banked for reuse.
  /// Rebuilding a similar-shaped pattern in place is then allocation-free;
  /// the batch paths reuse per-worker candidate patterns this way.
  void ResetToRoot(LabelId root_label);

  /// Rewinds to the empty pattern Υ, banking buffers likewise.
  void ResetToEmpty();

  [[nodiscard]] bool IsEmpty() const noexcept { return labels_.empty(); }
  int size() const { return static_cast<int>(labels_.size()); }

  NodeId root() const { return 0; }
  NodeId output() const { return output_; }

  /// Designates `n` as the output node.
  void set_output(NodeId n) { output_ = n; }

  LabelId label(NodeId n) const { return labels_[static_cast<size_t>(n)]; }
  NodeId parent(NodeId n) const { return parents_[static_cast<size_t>(n)]; }

  /// The type of the edge entering `n` from its parent. Requires n != root.
  EdgeType edge(NodeId n) const { return edges_[static_cast<size_t>(n)]; }

  const std::vector<NodeId>& children(NodeId n) const {
    return children_[static_cast<size_t>(n)];
  }

  void set_label(NodeId n, LabelId label) {
    labels_[static_cast<size_t>(n)] = label;
  }
  void set_edge(NodeId n, EdgeType edge) {
    edges_[static_cast<size_t>(n)] = edge;
  }

  /// Ids of all nodes in the subtree rooted at `n`, in preorder.
  std::vector<NodeId> SubtreeNodes(NodeId n) const;

  /// Height of the subtree rooted at `n` (edges to the deepest leaf).
  int SubtreeHeight(NodeId n) const;

  /// Height of the whole pattern.
  int Height() const { return IsEmpty() ? 0 : SubtreeHeight(root()); }

  /// Canonical textual encoding of the pattern, invariant under sibling
  /// reordering and including the output designation. Two patterns are
  /// isomorphic (in the sense of [10]: label-, edge- and output-preserving
  /// bijection) iff their encodings are equal.
  [[nodiscard]] std::string CanonicalEncoding() const;

  /// 64-bit structural fingerprint of the canonical encoding: computed by
  /// hashing (label, incoming edge type, output flag, sorted child
  /// fingerprints) bottom-up, so it is invariant under sibling reordering.
  /// Isomorphic patterns always collide; distinct patterns collide with
  /// probability ~2^-64. The containment oracle keys its cache on pairs of
  /// these fingerprints instead of pairs of encoding strings.
  [[nodiscard]] uint64_t CanonicalFingerprint() const;

  /// Multi-line ASCII rendering (output node marked with '>'), for
  /// debugging and the example binaries. Descendant edges are drawn '//'.
  std::string ToAscii() const;

 private:
  Pattern() = default;

  std::string EncodeSubtree(NodeId n) const;

  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<EdgeType> edges_;  // edges_[n] = edge entering n; root unused.
  std::vector<std::vector<NodeId>> children_;
  NodeId output_ = 0;
};

/// True iff `a` and `b` are isomorphic patterns (structure, labels, edge
/// types and output node all correspond). This is syntactic identity up to
/// sibling order — NOT query equivalence; for the latter see
/// `containment/containment.h`.
bool Isomorphic(const Pattern& a, const Pattern& b);

}  // namespace xpv

#endif  // XPV_PATTERN_PATTERN_H_
