#include "pattern/canonical.h"

#include <cassert>

namespace xpv {

CanonicalModel Tau(const Pattern& p) {
  assert(!p.IsEmpty());
  CanonicalModelEnumerator en(p, /*max_len=*/1);
  CanonicalModel model{Tree(LabelStore::kBottom), kNoNode, {}};
  bool ok = en.Next(&model);
  (void)ok;
  assert(ok);
  return model;
}

CanonicalModelEnumerator::CanonicalModelEnumerator(const Pattern& p,
                                                   int max_len,
                                                   LabelId interior_label)
    : pattern_(p), max_len_(max_len), interior_label_(interior_label) {
  assert(!p.IsEmpty());
  assert(max_len >= 1);
  for (NodeId n = 1; n < p.size(); ++n) {
    if (p.edge(n) == EdgeType::kDescendant) desc_targets_.push_back(n);
  }
  odometer_.assign(desc_targets_.size(), 1);
}

uint64_t CanonicalModelEnumerator::TotalCount() const {
  uint64_t count = 1;
  for (size_t i = 0; i < desc_targets_.size(); ++i) {
    count *= static_cast<uint64_t>(max_len_);
  }
  return count;
}

CanonicalModel CanonicalModelEnumerator::Build(
    const std::vector<int>& lengths) const {
  assert(lengths.size() == desc_targets_.size());
  // Per-node expansion length (1 for child edges).
  std::vector<int> len(static_cast<size_t>(pattern_.size()), 1);
  for (size_t i = 0; i < desc_targets_.size(); ++i) {
    assert(lengths[i] >= 1);
    len[static_cast<size_t>(desc_targets_[i])] = lengths[i];
  }

  auto tree_label = [&](NodeId n) {
    LabelId l = pattern_.label(n);
    return l == LabelStore::kWildcard ? LabelStore::kBottom : l;
  };

  CanonicalModel model{Tree(tree_label(pattern_.root())), kNoNode,
                       std::vector<NodeId>(
                           static_cast<size_t>(pattern_.size()), kNoNode)};
  model.pattern_to_tree[static_cast<size_t>(pattern_.root())] =
      model.tree.root();
  // Pattern ids are topologically sorted: parents map before children.
  for (NodeId n = 1; n < pattern_.size(); ++n) {
    NodeId attach =
        model.pattern_to_tree[static_cast<size_t>(pattern_.parent(n))];
    for (int i = 1; i < len[static_cast<size_t>(n)]; ++i) {
      attach = model.tree.AddChild(attach, interior_label_);
    }
    model.pattern_to_tree[static_cast<size_t>(n)] =
        model.tree.AddChild(attach, tree_label(n));
  }
  model.output =
      model.pattern_to_tree[static_cast<size_t>(pattern_.output())];
  return model;
}

bool CanonicalModelEnumerator::Next(CanonicalModel* out) {
  if (exhausted_) return false;
  *out = Build(odometer_);
  // Advance the odometer.
  size_t i = 0;
  for (; i < odometer_.size(); ++i) {
    if (odometer_[i] < max_len_) {
      ++odometer_[i];
      break;
    }
    odometer_[i] = 1;
  }
  if (i == odometer_.size()) exhausted_ = true;
  return true;
}

}  // namespace xpv
