#include "pattern/algebra.h"

#include <cassert>
#include <vector>

#include "pattern/properties.h"

namespace xpv {

NodeId CopySubtreeInto(Pattern* dst, NodeId dst_parent, EdgeType edge,
                       const Pattern& src, NodeId src_node,
                       std::vector<NodeId>* map) {
  NodeId copied = dst->AddChild(dst_parent, src.label(src_node), edge);
  if (map != nullptr) (*map)[static_cast<size_t>(src_node)] = copied;
  for (NodeId c : src.children(src_node)) {
    CopySubtreeInto(dst, copied, src.edge(c), src, c, map);
  }
  return copied;
}

namespace {

/// Rebuilds `*dst` as a copy of all of `src` (root to root). `map`
/// receives the node correspondence (always fully populated).
void CopyWholeInto(const Pattern& src, Pattern* dst,
                   std::vector<NodeId>* map) {
  map->assign(static_cast<size_t>(src.size()), kNoNode);
  dst->ResetToRoot(src.label(src.root()));
  (*map)[static_cast<size_t>(src.root())] = dst->root();
  for (NodeId c : src.children(src.root())) {
    CopySubtreeInto(dst, dst->root(), src.edge(c), src, c, map);
  }
  dst->set_output((*map)[static_cast<size_t>(src.output())]);
}

/// Copies all of `src` into a fresh pattern rooted at src's root. `map`
/// receives the node correspondence (always fully populated).
Pattern CopyWhole(const Pattern& src, std::vector<NodeId>* map) {
  Pattern dst(src.label(src.root()));
  CopyWholeInto(src, &dst, map);
  return dst;
}

}  // namespace

void ComposeInto(const Pattern& r, const Pattern& v, Pattern* out,
                 std::vector<NodeId>* map) {
  LabelId merged_label;
  if (r.IsEmpty() || v.IsEmpty() ||
      !LabelGlb(r.label(r.root()), v.label(v.output()), &merged_label)) {
    out->ResetToEmpty();
    return;
  }
  // One scratch map serves both copies in sequence: v's image is only
  // needed to locate the merged node, which is read before the map is
  // re-assigned for r.
  CopyWholeInto(v, out, map);
  NodeId merged = (*map)[static_cast<size_t>(v.output())];
  out->set_label(merged, merged_label);

  map->assign(static_cast<size_t>(r.size()), kNoNode);
  (*map)[static_cast<size_t>(r.root())] = merged;
  for (NodeId c : r.children(r.root())) {
    CopySubtreeInto(out, merged, r.edge(c), r, c, map);
  }
  out->set_output((*map)[static_cast<size_t>(r.output())]);
}

Pattern Compose(const Pattern& r, const Pattern& v) {
  Pattern result = Pattern::Empty();
  std::vector<NodeId> map;
  ComposeInto(r, v, &result, &map);
  return result;
}

void SubPatternInto(const Pattern& p, int k, Pattern* out,
                    std::vector<NodeId>* map) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  assert(k >= 0 && k <= info.depth());
  NodeId knode = info.KNode(k);
  map->assign(static_cast<size_t>(p.size()), kNoNode);
  out->ResetToRoot(p.label(knode));
  (*map)[static_cast<size_t>(knode)] = out->root();
  for (NodeId c : p.children(knode)) {
    CopySubtreeInto(out, out->root(), p.edge(c), p, c, map);
  }
  out->set_output((*map)[static_cast<size_t>(p.output())]);
}

Pattern SubPattern(const Pattern& p, int k) {
  Pattern result = Pattern::Empty();
  std::vector<NodeId> map;
  SubPatternInto(p, k, &result, &map);
  return result;
}

Pattern UpperPattern(const Pattern& p, int k) {
  assert(!p.IsEmpty());
  SelectionInfo info(p);
  assert(k >= 0 && k <= info.depth());
  NodeId cut = k < info.depth() ? info.KNode(k + 1) : kNoNode;

  std::vector<NodeId> map(static_cast<size_t>(p.size()), kNoNode);
  Pattern result(p.label(p.root()));
  map[static_cast<size_t>(p.root())] = result.root();
  // Preorder copy of every node except the pruned subtree. Node ids are
  // topologically sorted, so parents are mapped before children.
  for (NodeId n = 1; n < p.size(); ++n) {
    if (n == cut) continue;
    NodeId parent_img = map[static_cast<size_t>(p.parent(n))];
    if (parent_img == kNoNode) continue;  // Inside the pruned subtree.
    map[static_cast<size_t>(n)] =
        result.AddChild(parent_img, p.label(n), p.edge(n));
  }
  result.set_output(map[static_cast<size_t>(info.KNode(k))]);
  return result;
}

Pattern Combine(const Pattern& p1, int k, const Pattern& p2) {
  assert(!p1.IsEmpty() && !p2.IsEmpty());
  SelectionInfo info(p1);
  assert(k >= 0 && k <= info.depth());
  std::vector<NodeId> map1;
  Pattern result = CopyWhole(p1, &map1);
  NodeId attach = map1[static_cast<size_t>(info.KNode(k))];
  std::vector<NodeId> map2(static_cast<size_t>(p2.size()), kNoNode);
  CopySubtreeInto(&result, attach, EdgeType::kDescendant, p2, p2.root(),
                  &map2);
  result.set_output(map2[static_cast<size_t>(p2.output())]);
  return result;
}

void RelaxRootEdgesInto(const Pattern& q, Pattern* out,
                        std::vector<NodeId>* map) {
  assert(!q.IsEmpty());
  CopyWholeInto(q, out, map);
  for (NodeId c : out->children(out->root())) {
    out->set_edge(c, EdgeType::kDescendant);
  }
}

Pattern RelaxRootEdges(const Pattern& q) {
  Pattern result = Pattern::Empty();
  std::vector<NodeId> map;
  RelaxRootEdgesInto(q, &result, &map);
  return result;
}

Pattern Extend(const Pattern& q, LabelId l) {
  assert(!q.IsEmpty());
  std::vector<NodeId> map;
  Pattern result = CopyWhole(q, &map);
  // Collect q's leaves before mutating the copy.
  std::vector<NodeId> leaves;
  for (NodeId n = 0; n < q.size(); ++n) {
    if (q.children(n).empty()) leaves.push_back(n);
  }
  for (NodeId leaf : leaves) {
    if (leaf == q.output()) continue;  // out(Q) gets the l-child only.
    result.AddChild(map[static_cast<size_t>(leaf)], LabelStore::kWildcard,
                    EdgeType::kChild);
  }
  result.AddChild(map[static_cast<size_t>(q.output())], l, EdgeType::kChild);
  return result;
}

Pattern LiftOutput(const Pattern& q, int j) {
  assert(!q.IsEmpty());
  SelectionInfo info(q);
  assert(j >= 0 && j <= info.depth());
  std::vector<NodeId> map;
  Pattern result = CopyWhole(q, &map);
  result.set_output(map[static_cast<size_t>(info.KNode(j))]);
  return result;
}

Pattern DescendantPrefix(LabelId l, const Pattern& q) {
  assert(!q.IsEmpty());
  Pattern result(l);
  std::vector<NodeId> map(static_cast<size_t>(q.size()), kNoNode);
  CopySubtreeInto(&result, result.root(), EdgeType::kDescendant, q, q.root(),
                  &map);
  result.set_output(map[static_cast<size_t>(q.output())]);
  return result;
}

}  // namespace xpv
