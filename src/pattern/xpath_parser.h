#ifndef XPV_PATTERN_XPATH_PARSER_H_
#define XPV_PATTERN_XPATH_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "pattern/pattern.h"
#include "util/result.h"

namespace xpv {

/// A structured XPath parse failure: what went wrong and where. `offset`
/// is the byte offset into the input at which the parser gave up (for
/// `a[b//]` the offset is 5, the ']' where a step was expected).
struct XPathParseError {
  size_t offset = 0;
  std::string message;  ///< e.g. "expected step".

  /// One-line summary: `position 5: expected step`.
  std::string Summary() const;

  /// Multi-line rendering with a caret marking `offset` in `input`:
  ///
  ///   position 5: expected step
  ///     a[b//]
  ///          ^
  ///
  /// The caret column is counted in display columns (code points) over
  /// the offending line, so multi-byte UTF-8 labels before the error do
  /// not misplace it; `offset` itself stays byte-based.
  std::string Format(std::string_view input) const;
};

/// Parses an expression of the XPath fragment XP^{//,[],*} into a `Pattern`.
///
/// Grammar (the paper's `q ::= q/q | q//q | q[q] | l | *`, concretely):
///
///   pattern   ::= ['/' | '//'] step ( ('/' | '//') step )*
///   step      ::= (NAME | '*') predicate*
///   predicate ::= '[' rel ']'
///   rel       ::= ['//'] step ( ('/' | '//') step )*
///
/// Semantics:
///   * The first step of the top-level path is the pattern's *root node*
///     (patterns are anchored at the document root; a leading '/' is
///     accepted and ignored).
///   * A leading '//' creates an implicit root labeled '*' with a
///     descendant edge to the first explicit step, i.e. `//a` is `*//a`
///     anchored at the document root.
///   * Inside a predicate, the first step attaches to the current node by a
///     child edge, or by a descendant edge if the predicate starts with
///     '//' (e.g. `a[//b]` has a descendant edge from `a` to `b`).
///   * The output node is the last step of the top-level path.
///
/// NAME tokens are [A-Za-z_][A-Za-z0-9_.-]* extended with non-ASCII UTF-8
/// bytes (labels like `café` are legal and interned as byte strings);
/// names starting with '#' are rejected (reserved for internal labels).
///
/// On failure the error carries the byte offset of the first offending
/// character; the `xpv::Service` layer surfaces it (with caret context)
/// through `ServiceError`.
[[nodiscard]] Result<Pattern, XPathParseError> ParseXPathDetailed(
    std::string_view input);

/// String-error convenience wrapper around `ParseXPathDetailed`: the error
/// is `XPathParseError::Format(input)` (one-line summary + caret context).
[[nodiscard]] Result<Pattern> ParseXPath(std::string_view input);

/// Convenience for tests and examples: parses `input` and aborts on error.
Pattern MustParseXPath(std::string_view input);

}  // namespace xpv

#endif  // XPV_PATTERN_XPATH_PARSER_H_
