#include "pattern/properties.h"

#include <algorithm>
#include <cassert>

namespace xpv {

SelectionInfo::SelectionInfo(const Pattern& pattern) : pattern_(pattern) {
  assert(!pattern.IsEmpty());
  // Build the root -> output path.
  std::vector<NodeId> reversed;
  for (NodeId cur = pattern.output(); cur != kNoNode;
       cur = pattern.parent(cur)) {
    reversed.push_back(cur);
  }
  path_.assign(reversed.rbegin(), reversed.rend());

  // node_depth_[v] = depth of deepest selection ancestor of v. Nodes are
  // topologically ordered, so a single forward pass suffices.
  node_depth_.assign(static_cast<size_t>(pattern.size()), 0);
  std::vector<int> on_path_depth(static_cast<size_t>(pattern.size()), -1);
  for (size_t k = 0; k < path_.size(); ++k) {
    on_path_depth[static_cast<size_t>(path_[k])] = static_cast<int>(k);
  }
  for (NodeId n = 0; n < pattern.size(); ++n) {
    if (on_path_depth[static_cast<size_t>(n)] >= 0) {
      node_depth_[static_cast<size_t>(n)] =
          on_path_depth[static_cast<size_t>(n)];
    } else {
      node_depth_[static_cast<size_t>(n)] =
          node_depth_[static_cast<size_t>(pattern.parent(n))];
    }
  }
}

bool SelectionInfo::OnPath(NodeId n) const {
  return std::find(path_.begin(), path_.end(), n) != path_.end();
}

EdgeType SelectionInfo::SelectionEdge(int k) const {
  assert(k >= 1 && k <= depth());
  return pattern_.edge(path_[static_cast<size_t>(k)]);
}

int SelectionInfo::DeepestDescendantSelectionEdge() const {
  for (int k = depth(); k >= 1; --k) {
    if (SelectionEdge(k) == EdgeType::kDescendant) return k;
  }
  return 0;
}

bool SelectionInfo::ChildOnlyRange(int from, int to) const {
  for (int k = from + 1; k <= to; ++k) {
    if (SelectionEdge(k) == EdgeType::kDescendant) return false;
  }
  return true;
}

std::set<LabelId> SigmaLabelsInSubtree(const Pattern& p, NodeId n) {
  std::set<LabelId> out;
  for (NodeId v : p.SubtreeNodes(n)) {
    if (p.label(v) != LabelStore::kWildcard) out.insert(p.label(v));
  }
  return out;
}

std::set<LabelId> SigmaLabels(const Pattern& p) {
  if (p.IsEmpty()) return {};
  return SigmaLabelsInSubtree(p, p.root());
}

bool IsLinearSubtree(const Pattern& p, NodeId n) {
  for (NodeId v : p.SubtreeNodes(n)) {
    if (p.children(v).size() > 1) return false;
  }
  return true;
}

bool IsLinear(const Pattern& p) {
  return p.IsEmpty() || IsLinearSubtree(p, p.root());
}

int StarChainLength(const Pattern& p) {
  if (p.IsEmpty()) return 0;
  // chain[n] = length (in nodes) of the longest chain of *-labeled nodes
  // connected by child edges that *ends* at n.
  std::vector<int> chain(static_cast<size_t>(p.size()), 0);
  int best = 0;
  for (NodeId n = 0; n < p.size(); ++n) {
    if (p.label(n) != LabelStore::kWildcard) continue;
    int above = 0;
    NodeId par = p.parent(n);
    if (par != kNoNode && p.edge(n) == EdgeType::kChild) {
      above = chain[static_cast<size_t>(par)];
    }
    chain[static_cast<size_t>(n)] = above + 1;
    best = std::max(best, chain[static_cast<size_t>(n)]);
  }
  return best;
}

int CountDescendantEdges(const Pattern& p) {
  int count = 0;
  for (NodeId n = 1; n < p.size(); ++n) {
    if (p.edge(n) == EdgeType::kDescendant) ++count;
  }
  return count;
}

bool HasNoWildcard(const Pattern& p) {
  for (NodeId n = 0; n < p.size(); ++n) {
    if (p.label(n) == LabelStore::kWildcard) return false;
  }
  return true;
}

bool HasNoDescendantEdge(const Pattern& p) {
  return CountDescendantEdges(p) == 0;
}

bool HasNoBranch(const Pattern& p) { return IsLinear(p); }

bool InHomomorphismFragment(const Pattern& p) {
  return HasNoWildcard(p) || HasNoDescendantEdge(p);
}

}  // namespace xpv
