#include "pattern/dot.h"

namespace xpv {
namespace {

/// Escapes a label for inclusion in a double-quoted DOT string.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string PatternToDot(const Pattern& p, const std::string& name) {
  std::string out = "digraph \"" + Escape(name) + "\" {\n";
  out += "  node [shape=circle, fontsize=11];\n";
  if (p.IsEmpty()) {
    out += "  empty [label=\"Y (empty)\", shape=plaintext];\n}\n";
    return out;
  }
  for (NodeId n = 0; n < p.size(); ++n) {
    out += "  n" + std::to_string(n) + " [label=\"" +
           Escape(LabelName(p.label(n))) + "\"";
    if (n == p.output()) out += ", shape=doublecircle";
    out += "];\n";
  }
  for (NodeId n = 1; n < p.size(); ++n) {
    out += "  n" + std::to_string(p.parent(n)) + " -> n" +
           std::to_string(n);
    if (p.edge(n) == EdgeType::kDescendant) {
      out += " [style=dashed, label=\"//\"]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string TreeToDot(const Tree& t, const std::string& name,
                      NodeId highlight) {
  std::string out = "digraph \"" + Escape(name) + "\" {\n";
  out += "  node [shape=circle, fontsize=11];\n";
  for (NodeId n = 0; n < t.size(); ++n) {
    out += "  n" + std::to_string(n) + " [label=\"" +
           Escape(LabelName(t.label(n))) + "\"";
    if (n == highlight) out += ", style=filled, fillcolor=lightgray";
    out += "];\n";
  }
  for (NodeId n = 1; n < t.size(); ++n) {
    out += "  n" + std::to_string(t.parent(n)) + " -> n" +
           std::to_string(n) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace xpv
