#include "pattern/serializer.h"

#include "pattern/properties.h"

namespace xpv {
namespace {

/// Emits the subtree rooted at `n` as a relative path starting with `n`
/// itself: "label[preds]/..." — used inside predicates, where the path may
/// continue only if the subtree is a chain; general subtrees nest as
/// predicates.
void EmitNodeAndBranches(const Pattern& p, NodeId n, std::string* out);

void EmitPredicate(const Pattern& p, NodeId child, std::string* out) {
  out->push_back('[');
  if (p.edge(child) == EdgeType::kDescendant) *out += "//";
  EmitNodeAndBranches(p, child, out);
  out->push_back(']');
}

void EmitNodeAndBranches(const Pattern& p, NodeId n, std::string* out) {
  *out += LabelName(p.label(n));
  const auto& kids = p.children(n);
  if (kids.size() == 1 && p.edge(kids[0]) == EdgeType::kChild) {
    // Single child by child edge: continue the path inline for readability.
    // (Descendant single children also could be inlined, but `[//x]` at the
    // start of a predicate is only valid in first position, so inlining `//`
    // is always safe too; do it.)
  }
  if (kids.size() == 1) {
    NodeId c = kids[0];
    *out += p.edge(c) == EdgeType::kDescendant ? "//" : "/";
    EmitNodeAndBranches(p, c, out);
    return;
  }
  for (NodeId c : kids) EmitPredicate(p, c, out);
}

}  // namespace

std::string ToXPath(const Pattern& p) {
  if (p.IsEmpty()) return "<empty>";
  SelectionInfo info(p);
  std::string out;
  for (int k = 0; k <= info.depth(); ++k) {
    NodeId n = info.KNode(k);
    if (k > 0) {
      out += info.SelectionEdge(k) == EdgeType::kDescendant ? "//" : "/";
    }
    out += LabelName(p.label(n));
    NodeId next = k < info.depth() ? info.KNode(k + 1) : kNoNode;
    for (NodeId c : p.children(n)) {
      if (c == next) continue;  // The selection path continues there.
      EmitPredicate(p, c, &out);
    }
  }
  return out;
}

}  // namespace xpv
