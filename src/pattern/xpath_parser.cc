#include "pattern/xpath_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace xpv {

std::string XPathParseError::Summary() const {
  return "position " + std::to_string(offset) + ": " + message;
}

std::string XPathParseError::Format(std::string_view input) const {
  std::string out = Summary();
  // Slice the context to the line containing `offset` — embedded newlines
  // are legal whitespace in the grammar and would otherwise break the
  // caret alignment.
  const size_t clamped = offset < input.size() ? offset : input.size();
  size_t line_begin = 0;
  if (clamped > 0) {
    const size_t nl = input.rfind('\n', clamped - 1);
    if (nl != std::string_view::npos) line_begin = nl + 1;
  }
  size_t line_end = input.find('\n', clamped);
  if (line_end == std::string_view::npos) line_end = input.size();
  const std::string_view line = input.substr(line_begin, line_end - line_begin);
  out += "\n  ";
  out.append(line.data(), line.size());
  out += "\n  ";
  // The caret column is counted in display columns, not bytes: labels may
  // be multi-byte UTF-8 (the struct's `offset` stays byte-based), and a
  // byte count would push the caret right of the offending character.
  // Code points are counted by skipping UTF-8 continuation bytes.
  size_t columns = 0;
  for (size_t i = line_begin; i < clamped; ++i) {
    if ((static_cast<unsigned char>(input[i]) & 0xC0) != 0x80) ++columns;
  }
  out.append(columns, ' ');
  out += '^';
  return out;
}

namespace {

/// Recursive-descent parser over the grammar in the header. Every failure
/// site records the byte offset of the offending character.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Pattern, XPathParseError> Parse() {
    SkipSpace();
    if (AtEnd()) return Err("empty expression");

    // Leading axis.
    bool leading_descendant = false;
    if (PeekIs("//")) {
      leading_descendant = true;
      pos_ += 2;
    } else if (Peek() == '/') {
      ++pos_;
    }

    Pattern p = leading_descendant ? Pattern(LabelStore::kWildcard)
                                   : Pattern(kNoLabelYet());
    // For the non-descendant case we create the root from the first step's
    // label; we used a placeholder above, so parse the first step now.
    NodeId current;
    if (leading_descendant) {
      Result<NodeId, XPathParseError> first =
          ParseStep(&p, p.root(), EdgeType::kDescendant);
      if (!first.ok()) return Fail(first.error());
      current = first.value();
    } else {
      Result<LabelId, XPathParseError> label = ParseStepLabel();
      if (!label.ok()) return Fail(label.error());
      p.set_label(p.root(), label.value());
      current = p.root();
      if (auto err = ParsePredicates(&p, current); err.has_value()) {
        return Fail(*err);
      }
    }

    // Remaining steps.
    while (true) {
      SkipSpace();
      if (AtEnd()) break;
      EdgeType edge;
      if (PeekIs("//")) {
        edge = EdgeType::kDescendant;
        pos_ += 2;
      } else if (Peek() == '/') {
        edge = EdgeType::kChild;
        ++pos_;
      } else {
        return Err(std::string("unexpected character '") + Peek() + "'");
      }
      Result<NodeId, XPathParseError> next = ParseStep(&p, current, edge);
      if (!next.ok()) return Fail(next.error());
      current = next.value();
    }

    p.set_output(current);
    return p;
  }

 private:
  static LabelId kNoLabelYet() { return LabelStore::kWildcard; }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// An error at the current position.
  XPathParseError Here(std::string message) const {
    return XPathParseError{pos_, std::move(message)};
  }
  Result<Pattern, XPathParseError> Err(std::string message) const {
    return Fail(Here(std::move(message)));
  }
  static Result<Pattern, XPathParseError> Fail(XPathParseError error) {
    return Result<Pattern, XPathParseError>::Error(std::move(error));
  }

  Result<LabelId, XPathParseError> ParseStepLabel() {
    SkipSpace();
    if (AtEnd()) {
      return Result<LabelId, XPathParseError>::Error(Here("expected step"));
    }
    if (Peek() == '*') {
      ++pos_;
      return LabelStore::kWildcard;
    }
    // Bytes >= 0x80 are UTF-8 lead/continuation bytes of non-ASCII
    // labels, accepted verbatim (labels are interned as byte strings).
    const unsigned char first = static_cast<unsigned char>(Peek());
    if (!std::isalpha(first) && first != '_' && first < 0x80) {
      return Result<LabelId, XPathParseError>::Error(Here("expected step"));
    }
    std::string name;
    while (!AtEnd()) {
      const char c = Peek();
      const unsigned char uc = static_cast<unsigned char>(c);
      if (std::isalnum(uc) || uc >= 0x80 || c == '_' || c == '.' ||
          c == '-') {
        name.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return L(name);
  }

  /// Parses `step` and attaches it under `parent` with edge `edge`.
  /// Returns the new node's id.
  Result<NodeId, XPathParseError> ParseStep(Pattern* p, NodeId parent,
                                            EdgeType edge) {
    Result<LabelId, XPathParseError> label = ParseStepLabel();
    if (!label.ok()) {
      return Result<NodeId, XPathParseError>::Error(label.error());
    }
    NodeId node = p->AddChild(parent, label.value(), edge);
    if (auto err = ParsePredicates(p, node); err.has_value()) {
      return Result<NodeId, XPathParseError>::Error(*err);
    }
    return node;
  }

  /// Parses zero or more `[rel]` predicates attached to `node`. Returns an
  /// error, or nullopt on success.
  std::optional<XPathParseError> ParsePredicates(Pattern* p, NodeId node) {
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '[') return std::nullopt;
      ++pos_;  // '['
      SkipSpace();
      EdgeType first_edge = EdgeType::kChild;
      if (PeekIs("//")) {
        first_edge = EdgeType::kDescendant;
        pos_ += 2;
      }
      Result<NodeId, XPathParseError> first = ParseStep(p, node, first_edge);
      if (!first.ok()) return first.error();
      NodeId current = first.value();
      while (true) {
        SkipSpace();
        if (AtEnd()) return Here("unterminated predicate: expected ']'");
        if (Peek() == ']') {
          ++pos_;
          break;
        }
        EdgeType edge;
        if (PeekIs("//")) {
          edge = EdgeType::kDescendant;
          pos_ += 2;
        } else if (Peek() == '/') {
          edge = EdgeType::kChild;
          ++pos_;
        } else {
          return Here(std::string("unexpected character in predicate '") +
                      Peek() + "'");
        }
        Result<NodeId, XPathParseError> next = ParseStep(p, current, edge);
        if (!next.ok()) return next.error();
        current = next.value();
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Pattern, XPathParseError> ParseXPathDetailed(std::string_view input) {
  return Parser(input).Parse();
}

Result<Pattern> ParseXPath(std::string_view input) {
  Result<Pattern, XPathParseError> result = ParseXPathDetailed(input);
  if (!result.ok()) {
    return Result<Pattern>::Error("XPath parse error: " +
                                  result.error().Format(input));
  }
  return result.take();
}

Pattern MustParseXPath(std::string_view input) {
  Result<Pattern> result = ParseXPath(input);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseXPath(\"%.*s\"): %s\n",
                 static_cast<int>(input.size()), input.data(),
                 result.error().c_str());
    std::abort();
  }
  return result.take();
}

}  // namespace xpv
