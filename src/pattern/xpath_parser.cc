#include "pattern/xpath_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace xpv {
namespace {

/// Recursive-descent parser over the grammar in the header.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Pattern> Parse() {
    SkipSpace();
    if (AtEnd()) return Err("empty expression");

    // Leading axis.
    bool leading_descendant = false;
    if (PeekIs("//")) {
      leading_descendant = true;
      pos_ += 2;
    } else if (Peek() == '/') {
      ++pos_;
    }

    Pattern p = leading_descendant ? Pattern(LabelStore::kWildcard)
                                   : Pattern(kNoLabelYet());
    // For the non-descendant case we create the root from the first step's
    // label; we used a placeholder above, so parse the first step now.
    NodeId current;
    if (leading_descendant) {
      Result<NodeId> first =
          ParseStep(&p, p.root(), EdgeType::kDescendant);
      if (!first.ok()) return Result<Pattern>::Error(first.error());
      current = first.value();
    } else {
      Result<LabelId> label = ParseStepLabel();
      if (!label.ok()) return Result<Pattern>::Error(label.error());
      p.set_label(p.root(), label.value());
      current = p.root();
      if (auto err = ParsePredicates(&p, current); !err.empty()) {
        return Result<Pattern>::Error(err);
      }
    }

    // Remaining steps.
    while (true) {
      SkipSpace();
      if (AtEnd()) break;
      EdgeType edge;
      if (PeekIs("//")) {
        edge = EdgeType::kDescendant;
        pos_ += 2;
      } else if (Peek() == '/') {
        edge = EdgeType::kChild;
        ++pos_;
      } else {
        return Err(std::string("unexpected character '") + Peek() + "'");
      }
      Result<NodeId> next = ParseStep(&p, current, edge);
      if (!next.ok()) return Result<Pattern>::Error(next.error());
      current = next.value();
    }

    p.set_output(current);
    return p;
  }

 private:
  static LabelId kNoLabelYet() { return LabelStore::kWildcard; }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Result<Pattern> Err(const std::string& message) const {
    return Result<Pattern>::Error("XPath parse error (offset " +
                                  std::to_string(pos_) + "): " + message);
  }

  Result<LabelId> ParseStepLabel() {
    SkipSpace();
    if (AtEnd()) return Result<LabelId>::Error("expected a step");
    if (Peek() == '*') {
      ++pos_;
      return LabelStore::kWildcard;
    }
    char first = Peek();
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
      return Result<LabelId>::Error(
          std::string("XPath parse error: expected name or '*', got '") +
          first + "'");
    }
    std::string name;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        name.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return L(name);
  }

  /// Parses `step` and attaches it under `parent` with edge `edge`.
  /// Returns the new node's id.
  Result<NodeId> ParseStep(Pattern* p, NodeId parent, EdgeType edge) {
    Result<LabelId> label = ParseStepLabel();
    if (!label.ok()) return Result<NodeId>::Error(label.error());
    NodeId node = p->AddChild(parent, label.value(), edge);
    if (std::string err = ParsePredicates(p, node); !err.empty()) {
      return Result<NodeId>::Error(err);
    }
    return node;
  }

  /// Parses zero or more `[rel]` predicates attached to `node`. Returns an
  /// error message, or empty string on success.
  std::string ParsePredicates(Pattern* p, NodeId node) {
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '[') return "";
      ++pos_;  // '['
      SkipSpace();
      EdgeType first_edge = EdgeType::kChild;
      if (PeekIs("//")) {
        first_edge = EdgeType::kDescendant;
        pos_ += 2;
      }
      Result<NodeId> first = ParseStep(p, node, first_edge);
      if (!first.ok()) return first.error();
      NodeId current = first.value();
      while (true) {
        SkipSpace();
        if (AtEnd()) return "XPath parse error: unterminated predicate";
        if (Peek() == ']') {
          ++pos_;
          break;
        }
        EdgeType edge;
        if (PeekIs("//")) {
          edge = EdgeType::kDescendant;
          pos_ += 2;
        } else if (Peek() == '/') {
          edge = EdgeType::kChild;
          ++pos_;
        } else {
          return std::string(
                     "XPath parse error: unexpected character in predicate "
                     "'") +
                 Peek() + "'";
        }
        Result<NodeId> next = ParseStep(p, current, edge);
        if (!next.ok()) return next.error();
        current = next.value();
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Pattern> ParseXPath(std::string_view input) {
  return Parser(input).Parse();
}

Pattern MustParseXPath(std::string_view input) {
  Result<Pattern> result = ParseXPath(input);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseXPath(\"%.*s\"): %s\n",
                 static_cast<int>(input.size()), input.data(),
                 result.error().c_str());
    std::abort();
  }
  return result.take();
}

}  // namespace xpv
