#include "pattern/pattern.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "util/hash.h"  // Mix64 — the fingerprint's mixer.

namespace xpv {

Pattern::Pattern(LabelId root_label) {
  labels_.push_back(root_label);
  parents_.push_back(kNoNode);
  edges_.push_back(EdgeType::kChild);  // Unused for the root.
  children_.emplace_back();
}

NodeId Pattern::AddChild(NodeId parent, LabelId label, EdgeType edge) {
  assert(parent >= 0 && parent < size());
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  edges_.push_back(edge);
  // Reuse a spare child list banked by ResetToRoot/ResetToEmpty (empty,
  // but its heap buffer survives); only grow when none is banked.
  if (children_.size() < labels_.size()) children_.emplace_back();
  children_[static_cast<size_t>(parent)].push_back(id);
  return id;
}

void Pattern::ResetToEmpty() {
  labels_.clear();
  parents_.clear();
  edges_.clear();
  // Bank every child list: `clear()` keeps each vector's buffer, and
  // `AddChild` re-adopts the slots in creation order. Rebuilding a pattern
  // of similar shape into this object then allocates nothing — the storage
  // discipline behind the per-worker reusable candidate bundles.
  for (std::vector<NodeId>& kids : children_) kids.clear();
  output_ = 0;
}

void Pattern::ResetToRoot(LabelId root_label) {
  ResetToEmpty();
  labels_.push_back(root_label);
  parents_.push_back(kNoNode);
  edges_.push_back(EdgeType::kChild);  // Unused for the root.
  if (children_.empty()) children_.emplace_back();
}

std::vector<NodeId> Pattern::SubtreeNodes(NodeId n) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

int Pattern::SubtreeHeight(NodeId n) const {
  int best = 0;
  for (NodeId c : children(n)) best = std::max(best, 1 + SubtreeHeight(c));
  return best;
}

std::string Pattern::EncodeSubtree(NodeId n) const {
  std::vector<std::string> kids;
  kids.reserve(children(n).size());
  for (NodeId c : children(n)) kids.push_back(EncodeSubtree(c));
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  if (n != root()) out += edge(n) == EdgeType::kDescendant ? "D" : "C";
  out += std::to_string(label(n));
  if (n == output()) out += "!";
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

std::string Pattern::CanonicalEncoding() const {
  if (IsEmpty()) return "<empty>";
  return EncodeSubtree(root());
}

uint64_t Pattern::CanonicalFingerprint() const {
  if (IsEmpty()) return 0x9E3779B97F4A7C15ULL;
  // Bottom-up over ids (children have larger ids than their parent), with
  // thread-local scratch so the oracle's key derivation never allocates.
  static thread_local std::vector<uint64_t> hashes;
  static thread_local std::vector<uint64_t> kid_hashes;
  hashes.resize(static_cast<size_t>(size()));
  for (NodeId n = size() - 1; n >= 0; --n) {
    kid_hashes.clear();
    for (NodeId c : children(n)) {
      kid_hashes.push_back(hashes[static_cast<size_t>(c)]);
    }
    std::sort(kid_hashes.begin(), kid_hashes.end());
    uint64_t h = Mix64(static_cast<uint64_t>(label(n)) + 0x1B873593ULL);
    if (n != root() && edge(n) == EdgeType::kDescendant) {
      h = Mix64(h ^ 0xD6E8FEB86659FD93ULL);
    }
    if (n == output()) h = Mix64(h ^ 0xA24BAED4963EE407ULL);
    for (uint64_t k : kid_hashes) h = Mix64(h * 0x100000001B3ULL ^ k);
    hashes[static_cast<size_t>(n)] = h;
  }
  return hashes[0];
}

std::string Pattern::ToAscii() const {
  if (IsEmpty()) return "<empty pattern>\n";
  std::string out;
  std::function<void(NodeId, std::string, bool)> render =
      [&](NodeId n, std::string prefix, bool last) {
        out += prefix;
        if (n != root()) {
          out += last ? "`-" : "|-";
          out += edge(n) == EdgeType::kDescendant ? "//" : "-";
        }
        out += LabelName(label(n));
        if (n == output()) out += "  <-- output";
        out += "\n";
        std::string child_prefix =
            prefix + (n == root() ? "" : (last ? "  " : "| "));
        const auto& kids = children(n);
        for (size_t i = 0; i < kids.size(); ++i) {
          render(kids[i], child_prefix, i + 1 == kids.size());
        }
      };
  render(root(), "", true);
  return out;
}

bool Isomorphic(const Pattern& a, const Pattern& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() == b.IsEmpty();
  if (a.size() != b.size()) return false;
  return a.CanonicalEncoding() == b.CanonicalEncoding();
}

}  // namespace xpv
