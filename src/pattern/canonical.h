#ifndef XPV_PATTERN_CANONICAL_H_
#define XPV_PATTERN_CANONICAL_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// A canonical model of a pattern P (Section 2.1, after [14]): the tree
/// obtained by (1) replacing every `*` with the special label ⊥ and
/// (2) replacing every descendant edge with a path of one or more edges
/// whose internal nodes are labeled ⊥. `output` is the tree node
/// corresponding to out(P), and `pattern_to_tree` maps every pattern node to
/// its corresponding tree node.
struct CanonicalModel {
  Tree tree;
  NodeId output;
  std::vector<NodeId> pattern_to_tree;
};

/// The τ-transformation (Section 3.1): the minimal canonical model, in which
/// every descendant edge becomes a single edge. Equivalent to the first
/// model produced by `CanonicalModelEnumerator` with all lengths 1.
CanonicalModel Tau(const Pattern& p);

/// Enumerates the canonical models of a pattern in which each descendant
/// edge is expanded into a path of length 1..max_len. There are
/// max_len^(#descendant edges) such models; by Miklau & Suciu [14] a bounded
/// family of this kind suffices for containment testing (the bound is chosen
/// by the caller, see `containment/containment.h`).
///
/// Internal path nodes are labeled ⊥ by default; `interior_label` can
/// override this (Lemma 4.11-style constructions need fresh labels).
class CanonicalModelEnumerator {
 public:
  /// `p` must be nonempty and must outlive the enumerator.
  CanonicalModelEnumerator(const Pattern& p, int max_len,
                           LabelId interior_label = LabelStore::kBottom);

  /// Produces the next canonical model. Returns false when exhausted.
  [[nodiscard]] bool Next(CanonicalModel* out);

  /// Total number of models this enumerator yields.
  uint64_t TotalCount() const;

  /// Builds the single canonical model with the given per-descendant-edge
  /// path lengths (in the order of `DescendantEdgeTargets()`).
  CanonicalModel Build(const std::vector<int>& lengths) const;

  /// The pattern nodes entered by a descendant edge, in id order; this is
  /// the edge order used by `Build` and the internal odometer.
  const std::vector<NodeId>& DescendantEdgeTargets() const {
    return desc_targets_;
  }

 private:
  const Pattern& pattern_;
  int max_len_;
  LabelId interior_label_;
  std::vector<NodeId> desc_targets_;
  std::vector<int> odometer_;
  bool exhausted_ = false;
};

}  // namespace xpv

#endif  // XPV_PATTERN_CANONICAL_H_
