#ifndef XPV_PATTERN_DOT_H_
#define XPV_PATTERN_DOT_H_

#include <string>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xpv {

/// Graphviz DOT rendering of a pattern: child edges solid, descendant
/// edges dashed with a "//" label, the output node double-circled —
/// matching the visual conventions of the paper's figures.
std::string PatternToDot(const Pattern& p, const std::string& name = "P");

/// Graphviz DOT rendering of a document tree. If `highlight` is a valid
/// node id, that node is filled (used to mark query outputs and
/// counterexample witnesses).
std::string TreeToDot(const Tree& t, const std::string& name = "t",
                      NodeId highlight = kNoNode);

}  // namespace xpv

#endif  // XPV_PATTERN_DOT_H_
