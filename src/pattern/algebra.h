#ifndef XPV_PATTERN_ALGEBRA_H_
#define XPV_PATTERN_ALGEBRA_H_

#include "pattern/pattern.h"

namespace xpv {

/// Composition R ∘ V (Section 2.3): merges the output node of `v` with the
/// root of `r`, labeling the merged node glb(label(root(r)), label(out(v))).
/// The result has the root of `v` and the output of `r` (the merged node if
/// root(r) == out(r)). If the glb does not exist, or either input is empty,
/// the result is the empty pattern Υ.
Pattern Compose(const Pattern& r, const Pattern& v);

/// The k-sub-pattern P≥k (Section 3.1): the subtree of `p` rooted at the
/// k-node, with p's output node. Requires 0 <= k <= depth(p).
Pattern SubPattern(const Pattern& p, int k);

/// The k-upper-pattern P≤k (Section 3.1): `p` with the subtree rooted at
/// the (k+1)-node pruned; the output is the k-node. Requires
/// 0 <= k <= depth(p) (for k == depth this is just `p`).
Pattern UpperPattern(const Pattern& p, int k);

/// The combination P1 k⇒ P2 (Section 3.1): a descendant edge from the
/// k-node of `p1` to the root of `p2`; the result has p1's root and p2's
/// output. Requires 0 <= k <= depth(p1).
Pattern Combine(const Pattern& p1, int k, const Pattern& p2);

/// Root relaxation Q_r// (Section 4): every edge emanating from the root
/// becomes a descendant edge. Note Q ⊑ Q_r//.
Pattern RelaxRootEdges(const Pattern& q);

/// The l-extension Q^{+l} (Section 5.3): adds a child labeled `l` to
/// out(Q) and a child labeled '*' to every other leaf. (If out(Q) is a
/// leaf it receives only the l-child.) All added edges are child edges;
/// the output node is unchanged.
Pattern Extend(const Pattern& q, LabelId l);

/// Output lifting Q^{j→} (Section 5.3): same pattern, but the output node
/// becomes the j-node of Q's selection path. Requires 0 <= j <= depth(q).
Pattern LiftOutput(const Pattern& q, int j);

/// The pattern l//Q (Section 5.2): a new root labeled `l` connected to the
/// root of `q` by a descendant edge; the output is q's output.
Pattern DescendantPrefix(LabelId l, const Pattern& q);

/// Deep-copies the subtree of `src` rooted at `src_node` as a new child of
/// `dst_parent` in `*dst`, entered by an edge of type `edge`. If `map` is
/// non-null it receives, for every node s of the copied subtree,
/// (*map)[s] = corresponding node of dst ((*map) must be pre-sized to
/// src.size(), other entries are untouched). Returns the copied root's id.
NodeId CopySubtreeInto(Pattern* dst, NodeId dst_parent, EdgeType edge,
                       const Pattern& src, NodeId src_node,
                       std::vector<NodeId>* map);

// ---------------------------------------------------------------------------
// In-place variants: same results as the value-returning operations above,
// but rebuilt into a caller-owned pattern via `Pattern::ResetToRoot` /
// `ResetToEmpty`, with `*map` as node-map scratch. A warm output pattern
// (and map) of similar shape makes these allocation-free — the storage
// behind the batch paths' reusable per-worker candidate bundles. `out`
// must not alias the input pattern(s).
// ---------------------------------------------------------------------------

/// `*out` = SubPattern(p, k).
void SubPatternInto(const Pattern& p, int k, Pattern* out,
                    std::vector<NodeId>* map);

/// `*out` = RelaxRootEdges(q).
void RelaxRootEdgesInto(const Pattern& q, Pattern* out,
                        std::vector<NodeId>* map);

/// `*out` = Compose(r, v) (possibly the empty pattern Υ).
void ComposeInto(const Pattern& r, const Pattern& v, Pattern* out,
                 std::vector<NodeId>* map);

}  // namespace xpv

#endif  // XPV_PATTERN_ALGEBRA_H_
