#ifndef XPV_PATTERN_SERIALIZER_H_
#define XPV_PATTERN_SERIALIZER_H_

#include <string>

#include "pattern/pattern.h"

namespace xpv {

/// Serializes `p` back to XPath syntax accepted by `ParseXPath`.
///
/// The main path of the produced expression is the selection path (root to
/// output); every off-path subtree is emitted as a `[...]` predicate on the
/// selection node it hangs from. Descendant edges are rendered as `//`,
/// including the predicate-leading `[//...]` form. Round trip:
/// `ParseXPath(ToXPath(p))` is isomorphic to `p`.
///
/// The empty pattern serializes to the non-parseable marker "<empty>".
std::string ToXPath(const Pattern& p);

}  // namespace xpv

#endif  // XPV_PATTERN_SERIALIZER_H_
