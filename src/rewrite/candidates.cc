#include "rewrite/candidates.h"

#include "pattern/algebra.h"

namespace xpv {

NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth) {
  Pattern sub = SubPattern(p, view_depth);
  Pattern relaxed = RelaxRootEdges(sub);
  bool coincide = true;
  for (NodeId c : sub.children(sub.root())) {
    if (sub.edge(c) != EdgeType::kDescendant) {
      coincide = false;
      break;
    }
  }
  return NaturalCandidates{std::move(sub), std::move(relaxed), coincide};
}

CandidateBundle MakeCandidateBundle(const Pattern& p, const Pattern& v,
                                    int view_depth) {
  CandidateBundle bundle;
  bundle.natural = MakeNaturalCandidates(p, view_depth);
  bundle.sub_composition = Compose(bundle.natural.sub, v);
  if (!bundle.natural.coincide) {
    bundle.relaxed_composition = Compose(bundle.natural.relaxed, v);
  }
  return bundle;
}

void AppendBundlePairs(
    const CandidateBundle& bundle, const Pattern& p,
    std::vector<std::pair<const Pattern*, const Pattern*>>* pairs) {
  pairs->emplace_back(&bundle.sub_composition, &p);
  if (!bundle.natural.coincide) {
    pairs->emplace_back(&bundle.relaxed_composition, &p);
  }
}

}  // namespace xpv
