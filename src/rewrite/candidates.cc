#include "rewrite/candidates.h"

#include "pattern/algebra.h"

namespace xpv {

NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth) {
  Pattern sub = SubPattern(p, view_depth);
  Pattern relaxed = RelaxRootEdges(sub);
  bool coincide = true;
  for (NodeId c : sub.children(sub.root())) {
    if (sub.edge(c) != EdgeType::kDescendant) {
      coincide = false;
      break;
    }
  }
  return NaturalCandidates{std::move(sub), std::move(relaxed), coincide};
}

}  // namespace xpv
