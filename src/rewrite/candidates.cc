#include "rewrite/candidates.h"

#include "pattern/algebra.h"

namespace xpv {

NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth) {
  Pattern sub = SubPattern(p, view_depth);
  Pattern relaxed = RelaxRootEdges(sub);
  bool coincide = true;
  for (NodeId c : sub.children(sub.root())) {
    if (sub.edge(c) != EdgeType::kDescendant) {
      coincide = false;
      break;
    }
  }
  return NaturalCandidates{std::move(sub), std::move(relaxed), coincide};
}

CandidateBundle MakeCandidateBundle(const Pattern& p, const Pattern& v,
                                    int view_depth) {
  CandidateBundle bundle;
  std::vector<NodeId> map;
  MakeCandidateBundleInto(p, v, view_depth, &bundle, &map);
  return bundle;
}

void MakeCandidateBundleInto(const Pattern& p, const Pattern& v,
                             int view_depth, CandidateBundle* out,
                             std::vector<NodeId>* map) {
  SubPatternInto(p, view_depth, &out->natural.sub, map);
  const Pattern& sub = out->natural.sub;
  out->natural.coincide = true;
  for (NodeId c : sub.children(sub.root())) {
    if (sub.edge(c) != EdgeType::kDescendant) {
      out->natural.coincide = false;
      break;
    }
  }
  ComposeInto(sub, v, &out->sub_composition, map);
  if (!out->natural.coincide) {
    RelaxRootEdgesInto(sub, &out->natural.relaxed, map);
    ComposeInto(out->natural.relaxed, v, &out->relaxed_composition, map);
  } else {
    // Candidates coincide: the relaxed pair is unused. Rewind (don't
    // free) so a recycled bundle never leaks a stale pattern.
    out->natural.relaxed.ResetToEmpty();
    out->relaxed_composition.ResetToEmpty();
  }
}

const CandidateBundle& BundlePool::Build(const Pattern& p, const Pattern& v,
                                         int view_depth) {
  if (used_ == pool_.size()) pool_.emplace_back();
  CandidateBundle& bundle = pool_[used_++];
  MakeCandidateBundleInto(p, v, view_depth, &bundle, &map_);
  return bundle;
}

void AppendBundlePairs(
    const CandidateBundle& bundle, const Pattern& p,
    std::vector<std::pair<const Pattern*, const Pattern*>>* pairs) {
  pairs->emplace_back(&bundle.sub_composition, &p);
  if (!bundle.natural.coincide) {
    pairs->emplace_back(&bundle.relaxed_composition, &p);
  }
}

}  // namespace xpv
