#include "rewrite/candidates.h"

#include "pattern/algebra.h"

namespace xpv {

NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth) {
  Pattern sub = SubPattern(p, view_depth);
  Pattern relaxed = RelaxRootEdges(sub);
  bool coincide = true;
  for (NodeId c : sub.children(sub.root())) {
    if (sub.edge(c) != EdgeType::kDescendant) {
      coincide = false;
      break;
    }
  }
  return NaturalCandidates{std::move(sub), std::move(relaxed), coincide};
}

void AppendNaturalCandidatePairs(
    const Pattern& p, const Pattern& v, int view_depth,
    std::deque<Pattern>* compositions,
    std::vector<std::pair<const Pattern*, const Pattern*>>* pairs) {
  NaturalCandidates natural = MakeNaturalCandidates(p, view_depth);
  compositions->push_back(Compose(natural.sub, v));
  if (!natural.coincide) {
    compositions->push_back(Compose(natural.relaxed, v));
  }
  const size_t n = natural.coincide ? 1 : 2;
  for (size_t i = compositions->size() - n; i < compositions->size(); ++i) {
    pairs->emplace_back(&(*compositions)[i], &p);
  }
}

}  // namespace xpv
