#ifndef XPV_REWRITE_MULTIVIEW_H_
#define XPV_REWRITE_MULTIVIEW_H_

#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "rewrite/engine.h"

namespace xpv {

/// Result of rewriting against a set of views.
struct MultiViewRewriteResult {
  bool found = false;
  /// Indices (into the input vector) of the views used, in application
  /// order: the first view is applied to the document, each further view
  /// to the previous result. Length 1 = ordinary single-view rewriting.
  std::vector<int> view_chain;
  /// The final rewriting R: with W the composition of the chained views,
  /// R ∘ W ≡ P.
  Pattern rewriting = Pattern::Empty();
  std::string explanation;
};

/// Options for the multi-view search.
struct MultiViewOptions {
  /// Also try chains of two views W = V_j ∘ V_i. Because
  /// (V_j ∘ V_i)(t) = V_j(V_i(t)) (Prop 2.4), a chained rewriting is still
  /// answerable purely from the materialized result of V_i — V_j and R are
  /// evaluated on cached subtrees only.
  bool try_chains = true;
  RewriteOptions engine;
};

/// Rewriting using multiple views — the paper's fifth open problem
/// ("formulating and solving the problem of rewriting a query using
/// multiple views", Section 6) in its sequential-composition form:
///
///   1. For each view V_i, ask the single-view engine for R with
///      R ∘ V_i ≡ P.
///   2. If none succeeds and chains are enabled, for each ordered pair
///      (V_i, V_j) with depth(V_i) + depth(V_j) <= depth(P) and
///      V_j ∘ V_i nonempty, ask for R with R ∘ (V_j ∘ V_i) ≡ P.
///
/// Soundness is inherited from the single-view engine (every answer
/// passed an equivalence test). The search is complete relative to the
/// engine for chains of length <= 2; longer chains add nothing here
/// because W ranges over compositions that are themselves patterns, so
/// any chain is equivalent to some single "virtual view" — the value of
/// chaining is that each W is available from already-materialized
/// results.
[[nodiscard]] MultiViewRewriteResult DecideRewriteMultiView(
    const Pattern& p, const std::vector<Pattern>& views,
    const MultiViewOptions& options = {});

}  // namespace xpv

#endif  // XPV_REWRITE_MULTIVIEW_H_
