#include "rewrite/multiview.h"

#include <cassert>

#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"

namespace xpv {

MultiViewRewriteResult DecideRewriteMultiView(
    const Pattern& p, const std::vector<Pattern>& views,
    const MultiViewOptions& options) {
  assert(!p.IsEmpty());
  MultiViewRewriteResult result;
  SelectionInfo pi(p);

  // Phase 1: single views.
  for (int i = 0; i < static_cast<int>(views.size()); ++i) {
    const Pattern& v = views[static_cast<size_t>(i)];
    if (v.IsEmpty()) continue;
    RewriteResult single = DecideRewrite(p, v, options.engine);
    if (single.status == RewriteStatus::kFound) {
      result.found = true;
      result.view_chain = {i};
      result.rewriting = single.rewriting;
      result.explanation =
          "single view #" + std::to_string(i) + ": " + single.explanation;
      return result;
    }
  }
  if (!options.try_chains) {
    result.explanation = "no single view admits an equivalent rewriting";
    return result;
  }

  // Phase 2: ordered chains of two views.
  for (int i = 0; i < static_cast<int>(views.size()); ++i) {
    const Pattern& vi = views[static_cast<size_t>(i)];
    if (vi.IsEmpty()) continue;
    for (int j = 0; j < static_cast<int>(views.size()); ++j) {
      if (j == i) continue;
      const Pattern& vj = views[static_cast<size_t>(j)];
      if (vj.IsEmpty()) continue;
      SelectionInfo ii(vi);
      SelectionInfo ji(vj);
      if (ii.depth() + ji.depth() > pi.depth()) continue;
      Pattern chained = Compose(vj, vi);
      if (chained.IsEmpty()) continue;
      RewriteResult over_chain = DecideRewrite(p, chained, options.engine);
      if (over_chain.status == RewriteStatus::kFound) {
        result.found = true;
        result.view_chain = {i, j};
        result.rewriting = over_chain.rewriting;
        result.explanation = "chained views #" + std::to_string(i) +
                             " then #" + std::to_string(j) + " (W = " +
                             ToXPath(chained) + "): " +
                             over_chain.explanation;
        return result;
      }
    }
  }

  result.explanation =
      "no single view or two-view chain admits an equivalent rewriting";
  return result;
}

}  // namespace xpv
