#include "rewrite/gnf.h"

#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "rewrite/stability.h"

namespace xpv {

bool IsInGeneralizedNormalForm(const Pattern& q) {
  if (q.IsEmpty()) return false;
  SelectionInfo info(q);
  for (int i = 1; i <= info.depth(); ++i) {
    if (info.SelectionEdge(i) == EdgeType::kChild) continue;       // (1)
    if (IsLinearSubtree(q, info.KNode(i))) continue;               // (3)
    if (IsStableSufficient(SubPattern(q, i))) continue;            // (2)
    return false;
  }
  return true;
}

}  // namespace xpv
