#include "rewrite/nf.h"

#include "pattern/properties.h"

namespace xpv {

bool IsInNormalFormNfStar(const Pattern& q) {
  if (q.IsEmpty()) return false;
  for (NodeId n = 1; n < q.size(); ++n) {
    if (q.edge(n) != EdgeType::kDescendant) continue;
    if (q.label(n) != LabelStore::kWildcard) continue;  // Non-* root.
    if (IsLinearSubtree(q, n)) continue;
    return false;
  }
  return true;
}

}  // namespace xpv
