#ifndef XPV_REWRITE_NF_H_
#define XPV_REWRITE_NF_H_

#include "pattern/pattern.h"

namespace xpv {

/// Membership test for (a faithful reconstruction of) the normal form NF/*
/// of Kimelfeld & Sagiv [10], which GNF/* (Definition 5.3) generalizes.
///
/// The paper characterizes the difference (Section 6): NF/* constrains the
/// *whole query*, while GNF/* "is based only on properties of the
/// selection path". Accordingly this predicate requires, for EVERY node n
/// of Q entered by a descendant edge (selection node or branch node
/// alike), that the subtree rooted at n either
///   1. has a non-wildcard root, or
///   2. is linear.
///
/// Both conditions imply the corresponding GNF/* condition on selection
/// nodes (a non-* root implies stability by Prop 4.1), so NF/* ⊆ GNF/*
/// holds by construction — matching the paper's "every pattern in NF/∗ is
/// also in GNF/∗, but not necessarily vice versa". The containment is
/// strict: GNF/* additionally accepts stability by a fresh branch label
/// (Prop 4.1, case 3) and ignores branch nodes entirely; the ablation
/// bench `bench_gnf_vs_nf` quantifies the coverage gap the paper claims.
[[nodiscard]] bool IsInNormalFormNfStar(const Pattern& q);

}  // namespace xpv

#endif  // XPV_REWRITE_NF_H_
