#ifndef XPV_REWRITE_ENGINE_H_
#define XPV_REWRITE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "pattern/pattern.h"
#include "rewrite/candidates.h"
#include "rewrite/rules.h"

namespace xpv {

class ContainmentOracle;

/// Outcome of a rewriting-existence decision.
enum class RewriteStatus {
  kFound,      ///< `rewriting` satisfies rewriting ∘ V ≡ P.
  kNotExists,  ///< Certified: no equivalent rewriting of P using V exists.
  kUnknown,    ///< Candidates failed, no completeness condition applies and
               ///< the (optional, budgeted) brute force found nothing.
};

/// Counters for the decision process (used by the benchmark harness).
struct RewriteStats {
  int equivalence_tests = 0;          ///< Candidate equivalence tests run.
  uint64_t bruteforce_candidates = 0; ///< Patterns tried by brute force.
  bool used_brute_force = false;
};

/// The full answer: status, the rewriting if found, which paper results
/// certified the decision, and a human-readable explanation.
struct RewriteResult {
  RewriteStatus status = RewriteStatus::kUnknown;
  Pattern rewriting = Pattern::Empty();
  /// For kNotExists: the necessary violation or completeness chain used.
  std::optional<NecessaryViolation> violation;
  std::optional<CompletenessFinding> completeness;
  RewriteStats stats;
  std::string explanation;
};

/// Configuration of the decision engine.
struct RewriteOptions {
  /// Run the Proposition 3.4 enumeration when the conditions are
  /// inconclusive (it can upgrade kUnknown to kFound, never to kNotExists).
  bool enable_brute_force = false;
  /// Brute-force budget: maximum number of node additions explored and
  /// maximum pattern size, see bruteforce.h.
  int brute_force_max_nodes = 6;
  uint64_t brute_force_budget = 50000;
  /// Optional memoizing containment oracle. When set, the candidate
  /// equivalence tests go through it, amortizing the coNP work across
  /// repeated decisions (cache workloads ask about overlapping patterns).
  /// This is the injection seam of the serving layers: `ViewCache` points
  /// it at its (owned or injected) oracle, and `xpv::Service` threads its
  /// ONE shared oracle through here into every per-document cache.
  /// Not owned; must outlive the call. May be null.
  ContainmentOracle* oracle = nullptr;
};

/// Decides the rewriting-existence problem for a query `p` and view `v`
/// (both nonempty), implementing the paper's practical algorithm:
///
///   1. necessary conditions (Prop 3.1): k <= d and selection-label
///      compatibility — violations certify kNotExists;
///   2. construct the natural candidates P≥k and P≥k_r// (linear time) and
///      test each with one equivalence test (coNP, [14]) — success yields
///      kFound with that candidate;
///   3. otherwise evaluate the completeness conditions of Sections 4–5
///      (directly and through the Section-5 transformations); if any holds,
///      the failed candidates certify kNotExists;
///   4. otherwise optional brute force (Prop 3.4) within a budget; a hit
///      yields kFound, exhaustion yields kUnknown.
///
/// `precomputed` optionally supplies the step-2 candidate set built by
/// `MakeCandidateBundle` (batch paths construct it once per (query, view)
/// pair, warm the oracle with its forward pairs, and pass it here so the
/// candidates and compositions are never rebuilt). A non-null bundle
/// asserts that the caller already verified the necessary conditions
/// (`ViolatesBasicNecessaryConditions` — e.g. through the view-pruning
/// index), so step 1 is skipped.
[[nodiscard]] RewriteResult DecideRewrite(const Pattern& p, const Pattern& v,
                            const RewriteOptions& options = {},
                            const CandidateBundle* precomputed = nullptr);

}  // namespace xpv

#endif  // XPV_REWRITE_ENGINE_H_
