#ifndef XPV_REWRITE_BASELINE_H_
#define XPV_REWRITE_BASELINE_H_

#include <optional>
#include <string>

#include "pattern/pattern.h"

namespace xpv {

/// Result of the PTIME baseline.
struct BaselineResult {
  /// False if (P, V) is outside the scope where the baseline is complete;
  /// `status_valid == false` means the other fields are meaningless.
  bool applicable = false;
  bool found = false;
  Pattern rewriting = Pattern::Empty();
  std::string note;
};

/// Homomorphism-based rewriting in the spirit of Xu & Özsoyoglu (VLDB'05),
/// the algorithm the paper cites as solving the three sub-fragments in
/// PTIME (Section 1): when containment is characterized by homomorphisms,
/// it suffices to test natural candidates with homomorphism equivalence.
///
/// Applicability (where the answer is sound *and* complete):
///   * XP^{//,[]}: neither P nor V uses wildcards. Then the k-node of P is
///     labeled in Σ, so P≥k is stable (Prop 4.1) and is a potential
///     rewriting (Thm 4.3); one homomorphism-equivalence test decides.
///   * XP^{/,[],*}: neither P nor V uses descendant edges. Then Thm 4.4
///     applies (child-only selection prefix) and P≥k is potential; the
///     composition also stays descendant-free, keeping the homomorphism
///     test complete.
///
/// The paper's third PTIME sub-fragment, XP^{//,*} (linear patterns), is
/// NOT handled here: its containment is PTIME but not characterized by
/// homomorphisms (a/*//b ≡ a//*/b is a linear pair with no homomorphism),
/// so a homomorphism-equivalence baseline would be unsound as a decision
/// procedure there.
///
/// Outside these cases `applicable` is false and the caller should use
/// `DecideRewrite`. Runs in polynomial time.
[[nodiscard]] BaselineResult HomomorphismBaselineRewrite(const Pattern& p, const Pattern& v);

/// Homomorphism-based equivalence (both-direction homomorphism existence).
/// Complete only on the sub-fragments above; used by the baseline and by
/// the C4 bench.
[[nodiscard]] bool HomEquivalent(const Pattern& a, const Pattern& b);

}  // namespace xpv

#endif  // XPV_REWRITE_BASELINE_H_
