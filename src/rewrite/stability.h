#ifndef XPV_REWRITE_STABILITY_H_
#define XPV_REWRITE_STABILITY_H_

#include "pattern/pattern.h"

namespace xpv {

/// Sufficient conditions for *stability* (Proposition 4.1, after [10]).
///
/// A pattern Q is stable if weak equivalence to Q coincides with ordinary
/// equivalence to Q. Stability in general is not known to be efficiently
/// decidable; this predicate checks the paper's three sufficient
/// conditions and may return false for patterns that are in fact stable:
///   1. the root of Q is not labeled '*';
///   2. Q has depth 0;
///   3. Q has depth >= 1 and contains a Σ-label that does not occur in Q≥1
///      (i.e. some branch hanging off the root carries a label seen nowhere
///      below the 1-node).
[[nodiscard]] bool IsStableSufficient(const Pattern& q);

}  // namespace xpv

#endif  // XPV_REWRITE_STABILITY_H_
