#include "rewrite/stability.h"

#include <set>

#include "pattern/algebra.h"
#include "pattern/properties.h"

namespace xpv {

bool IsStableSufficient(const Pattern& q) {
  if (q.IsEmpty()) return false;
  if (q.label(q.root()) != LabelStore::kWildcard) return true;  // Case 1.
  SelectionInfo info(q);
  if (info.depth() == 0) return true;  // Case 2.
  // Case 3: a Σ-label of Q missing from Q≥1.
  std::set<LabelId> below = SigmaLabelsInSubtree(q, info.KNode(1));
  for (LabelId l : SigmaLabels(q)) {
    if (below.find(l) == below.end()) return true;
  }
  return false;
}

}  // namespace xpv
