#include "rewrite/engine.h"

#include <cassert>

#include "containment/containment.h"
#include "containment/oracle.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "rewrite/bruteforce.h"
#include "rewrite/candidates.h"

namespace xpv {
namespace {

std::string ChainToString(const CompletenessFinding& finding) {
  std::string out;
  for (size_t i = 0; i < finding.chain.size(); ++i) {
    if (i > 0) out += " -> ";
    out += RuleName(finding.chain[i]);
  }
  return out;
}

}  // namespace

RewriteResult DecideRewrite(const Pattern& p, const Pattern& v,
                            const RewriteOptions& options,
                            const CandidateBundle* precomputed) {
  assert(!p.IsEmpty() && !v.IsEmpty());
  RewriteResult result;

  // Step 1: necessary conditions. A precomputed bundle certifies that the
  // caller (batch warm-up, view-pruning index) already checked them.
  if (precomputed == nullptr) {
    if (auto violation = ViolatesBasicNecessaryConditions(p, v)) {
      result.status = RewriteStatus::kNotExists;
      result.violation = violation;
      result.explanation =
          "no rewriting: " + RuleName(violation->rule) + " — " +
          violation->detail;
      return result;
    }
  } else {
    assert(!ViolatesBasicNecessaryConditions(p, v).has_value());
  }

  // Step 2: construct and test the natural candidates. With an oracle both
  // directions of an equivalence land in one two-direction cache entry
  // (batch warm-ups, e.g. ViewCache::AnswerMany, prefill the forward
  // direction via ContainedMany), and the reverse test still short-circuits
  // when the forward one fails.
  auto equivalent = [&options](const Pattern& a, const Pattern& b) {
    return options.oracle != nullptr ? options.oracle->Equivalent(a, b)
                                     : Equivalent(a, b);
  };
  // Self-built bundles go into thread-local recycled storage: DecideRewrite
  // never runs reentrantly on one thread (the multi-view driver issues its
  // calls sequentially), and everything returned is copied out.
  static thread_local CandidateBundle local;
  static thread_local std::vector<NodeId> local_map;
  if (precomputed == nullptr) {
    MakeCandidateBundleInto(p, v, SelectionInfo(v).depth(), &local,
                            &local_map);
  }
  const CandidateBundle& bundle = precomputed != nullptr ? *precomputed : local;
  const NaturalCandidates& candidates = bundle.natural;
  {
    ++result.stats.equivalence_tests;
    if (equivalent(bundle.sub_composition, p)) {
      result.status = RewriteStatus::kFound;
      result.rewriting = candidates.sub;
      result.explanation = "found: the natural candidate P>=k (" +
                           ToXPath(candidates.sub) + ") is a rewriting";
      return result;
    }
  }
  if (!candidates.coincide) {
    ++result.stats.equivalence_tests;
    if (equivalent(bundle.relaxed_composition, p)) {
      result.status = RewriteStatus::kFound;
      result.rewriting = candidates.relaxed;
      result.explanation = "found: the natural candidate P>=k_r// (" +
                           ToXPath(candidates.relaxed) + ") is a rewriting";
      return result;
    }
  }

  // Step 3: completeness conditions.
  ConditionsReport report = EvaluateConditions(p, v);
  if (report.violation.has_value()) {
    result.status = RewriteStatus::kNotExists;
    result.violation = report.violation;
    result.explanation = "no rewriting: " + RuleName(report.violation->rule) +
                         " — " + report.violation->detail;
    return result;
  }
  if (report.completeness.has_value()) {
    result.status = RewriteStatus::kNotExists;
    result.completeness = report.completeness;
    result.explanation =
        "no rewriting: both natural candidates failed and a completeness "
        "condition holds [" +
        ChainToString(*report.completeness) + "]: " +
        report.completeness->detail;
    return result;
  }

  // Step 4: optional brute force (Prop 3.4).
  if (options.enable_brute_force) {
    result.stats.used_brute_force = true;
    BruteForceOptions bf;
    bf.max_nodes = options.brute_force_max_nodes;
    bf.budget = options.brute_force_budget;
    BruteForceOutcome outcome = BruteForceRewrite(p, v, bf);
    result.stats.bruteforce_candidates = outcome.candidates_tested;
    if (outcome.found.has_value()) {
      result.status = RewriteStatus::kFound;
      result.rewriting = *outcome.found;
      result.explanation =
          "found by bounded enumeration (Prop 3.4): " +
          ToXPath(result.rewriting);
      return result;
    }
  }

  result.status = RewriteStatus::kUnknown;
  result.explanation =
      "unknown: both natural candidates failed, no completeness condition "
      "of Sections 4-5 applies" +
      std::string(options.enable_brute_force
                       ? ", and the budgeted enumeration found nothing"
                       : " (brute force disabled)");
  return result;
}

}  // namespace xpv
