#ifndef XPV_REWRITE_GNF_H_
#define XPV_REWRITE_GNF_H_

#include "pattern/pattern.h"

namespace xpv {

/// Membership test for the generalized normal form GNF/* (Definition 5.3):
/// for every 1 <= i <= depth(Q), at least one of
///   1. a child edge enters the i-node,
///   2. Q≥i is stable (checked via the sufficient conditions of Prop 4.1),
///   3. Q≥i is linear.
///
/// Because stability is approximated by sufficient conditions, this test is
/// itself sufficient: `true` guarantees membership, `false` is inconclusive
/// (conservative in the safe direction for Theorem 5.4).
[[nodiscard]] bool IsInGeneralizedNormalForm(const Pattern& q);

}  // namespace xpv

#endif  // XPV_REWRITE_GNF_H_
