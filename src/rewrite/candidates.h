#ifndef XPV_REWRITE_CANDIDATES_H_
#define XPV_REWRITE_CANDIDATES_H_

#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// The two natural rewriting candidates w.r.t. a query P and a view V of
/// depths d >= k (Section 4): P≥k itself, and P≥k with the edges emanating
/// from its root relaxed to descendant edges (P≥k_r//).
struct NaturalCandidates {
  Pattern sub;      ///< P≥k.
  Pattern relaxed;  ///< P≥k_r//.

  /// True if the two candidates coincide (every root-emanating edge of P≥k
  /// is already a descendant edge), in which case one test suffices.
  bool coincide;
};

/// Builds the natural candidates. Runs in O(|P|) — this is the linear-time
/// construction claimed in Section 1 and benchmarked by
/// `bench_candidates_linear`. Requires 0 <= view_depth <= depth(p).
NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth);

}  // namespace xpv

#endif  // XPV_REWRITE_CANDIDATES_H_
