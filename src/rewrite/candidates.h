#ifndef XPV_REWRITE_CANDIDATES_H_
#define XPV_REWRITE_CANDIDATES_H_

#include <deque>
#include <utility>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// The two natural rewriting candidates w.r.t. a query P and a view V of
/// depths d >= k (Section 4): P≥k itself, and P≥k with the edges emanating
/// from its root relaxed to descendant edges (P≥k_r//).
struct NaturalCandidates {
  Pattern sub;      ///< P≥k.
  Pattern relaxed;  ///< P≥k_r//.

  /// True if the two candidates coincide (every root-emanating edge of P≥k
  /// is already a descendant edge), in which case one test suffices.
  bool coincide;
};

/// Builds the natural candidates. Runs in O(|P|) — this is the linear-time
/// construction claimed in Section 1 and benchmarked by
/// `bench_candidates_linear`. Requires 0 <= view_depth <= depth(p).
NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth);

/// Appends the natural-candidate compositions of query `p` over view `v`
/// (view depth `view_depth`) to `*compositions`, and for each one the
/// *forward* containment question (composition ⊑ p) to `*pairs`. These are
/// exactly the first-direction tests `DecideRewrite` issues in step 2, so
/// batch warm-up paths (`ViewCache::AnswerMany`, view selection scoring)
/// push `*pairs` through `ContainmentOracle::ContainedMany` and the engine
/// then answers from the cache; the reverse directions stay lazy (they are
/// only needed when a forward test holds). The pairs point into
/// `*compositions` — a deque, so growth never invalidates them.
void AppendNaturalCandidatePairs(
    const Pattern& p, const Pattern& v, int view_depth,
    std::deque<Pattern>* compositions,
    std::vector<std::pair<const Pattern*, const Pattern*>>* pairs);

}  // namespace xpv

#endif  // XPV_REWRITE_CANDIDATES_H_
