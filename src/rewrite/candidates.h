#ifndef XPV_REWRITE_CANDIDATES_H_
#define XPV_REWRITE_CANDIDATES_H_

#include <deque>
#include <utility>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// The two natural rewriting candidates w.r.t. a query P and a view V of
/// depths d >= k (Section 4): P≥k itself, and P≥k with the edges emanating
/// from its root relaxed to descendant edges (P≥k_r//).
struct NaturalCandidates {
  Pattern sub;      ///< P≥k.
  Pattern relaxed;  ///< P≥k_r//.

  /// True if the two candidates coincide (every root-emanating edge of P≥k
  /// is already a descendant edge), in which case one test suffices.
  bool coincide;
};

/// Builds the natural candidates. Runs in O(|P|) — this is the linear-time
/// construction claimed in Section 1 and benchmarked by
/// `bench_candidates_linear`. Requires 0 <= view_depth <= depth(p).
[[nodiscard]] NaturalCandidates MakeNaturalCandidates(const Pattern& p, int view_depth);

/// A (query, view) candidate set built once and shared: the natural
/// candidates plus their compositions with the view — everything the
/// engine's step-2 equivalence tests consume. Batch paths
/// (`ViewCache::AnswerMany`, view-selection scoring) build one bundle per
/// (query, view) pair, push its forward containment pairs through
/// `ContainmentOracle::ContainedMany`, and then hand the same bundle to
/// `DecideRewrite` — which would otherwise reconstruct all four patterns
/// from scratch (this was the duplicated polynomial setup called out in
/// ROADMAP.md).
struct CandidateBundle {
  NaturalCandidates natural{Pattern::Empty(), Pattern::Empty(), true};
  Pattern sub_composition = Pattern::Empty();      ///< natural.sub ∘ V.
  Pattern relaxed_composition = Pattern::Empty();  ///< natural.relaxed ∘ V
                                                   ///< (empty if coincide).
};

/// Builds the bundle for query `p` over view `v` with depth(v) ==
/// `view_depth`. The caller must have checked
/// `ViolatesBasicNecessaryConditions(p, v)` already (bundles only exist
/// for admissible pairs; `DecideRewrite` relies on this to skip step 1).
[[nodiscard]] CandidateBundle MakeCandidateBundle(const Pattern& p, const Pattern& v,
                                    int view_depth);

/// In-place variant: rebuilds `*out` (all four patterns, via the algebra
/// `*Into` operations) with `*map` as node-map scratch. A warm bundle of
/// similar shape is rebuilt without heap allocation — the cold batch path
/// builds one bundle per (query, view) pair, so recycling the storage
/// removes the dominant malloc traffic of a scan.
void MakeCandidateBundleInto(const Pattern& p, const Pattern& v,
                             int view_depth, CandidateBundle* out,
                             std::vector<NodeId>* map);

/// A per-worker pool of recycled candidate bundles. `Build` returns a
/// bundle constructed in recycled storage whose address stays stable until
/// the next `Rewind` (entries live in a deque and are never moved), so the
/// batch pipeline can keep bundles for a whole chunk alive — pairs pushed
/// into `ContainedMany` point into them — while still reusing all pattern
/// buffers across chunks. Not thread-safe: one pool per worker thread.
class BundlePool {
 public:
  /// Recycles every previously built bundle (their storage is reused by
  /// subsequent `Build` calls; outstanding references become invalid).
  void Rewind() { used_ = 0; }

  /// Builds the (p, v) bundle in recycled storage. Valid until `Rewind`.
  [[nodiscard]] const CandidateBundle& Build(const Pattern& p, const Pattern& v,
                               int view_depth);

  size_t capacity() const { return pool_.size(); }

 private:
  std::deque<CandidateBundle> pool_;  // Stable addresses across growth.
  std::vector<NodeId> map_;
  size_t used_ = 0;
};

/// Appends the *forward* containment questions of `bundle` (composition ⊑
/// p, for each distinct candidate) to `*pairs`. These are exactly the
/// first-direction tests `DecideRewrite` issues in step 2, so warming them
/// through `ContainmentOracle::ContainedMany` lets the engine answer from
/// the cache; the reverse directions stay lazy (they are only needed when
/// a forward test holds). The appended pointers point into `bundle` and
/// `p`, which must stay alive and unmoved for the duration of use.
void AppendBundlePairs(
    const CandidateBundle& bundle, const Pattern& p,
    std::vector<std::pair<const Pattern*, const Pattern*>>* pairs);

}  // namespace xpv

#endif  // XPV_REWRITE_CANDIDATES_H_
