#ifndef XPV_REWRITE_RULES_H_
#define XPV_REWRITE_RULES_H_

#include <optional>
#include <string>
#include <vector>

#include "pattern/pattern.h"

namespace xpv {

/// Identifiers for the paper's results used by the decision engine, both as
/// *necessary conditions* (violations certify that no rewriting exists) and
/// as *completeness conditions* (guarantees that a natural candidate is a
/// potential rewriting, so candidate failure certifies nonexistence).
enum class RuleId {
  // ---- Necessary conditions (violation => no rewriting). ----
  kDepthExceeded,           ///< k > d (Prop 3.1(1)).
  kSelectionLabelMismatch,  ///< Selection-label clash (Prop 3.1(3)).

  // ---- Direct completeness conditions on an instance (P, V). ----
  kEqualDepths,              ///< k == d (Section 4, pre-4.1 discussion).
  kViewOutputIsRoot,         ///< k == 0, out(V) = root(V) (Prop 3.5).
  kStableSubPattern,         ///< P≥k stable (Thm 4.3 + Prop 4.1).
  kChildOnlyQueryPrefix,     ///< Selection path of P≤k child-only (Thm 4.4).
  kDescendantIntoViewOutput, ///< Descendant edge enters out(V) (Thm 4.9).
  kChildOnlyViewPath,        ///< Selection path of V child-only (Thm 4.10).
  kCorrespondingLastDescendant,  ///< Last // of P corresponds in V (Thm 4.16).
  kGeneralizedNormalForm,    ///< P in GNF/* (Thm 5.4).

  // ---- Instance transformations (Section 5). ----
  kStableReduction,   ///< (P,V) -> (P≥i, V≥i), P≥i stable (Prop 5.1/Cor 5.2).
  kSuffixReduction,   ///< (P,V) -> (*//P≥i, *//V≥i), i = deepest // of V (Prop 5.6; with Thm 4.16 yields Cor 5.7).
  kExtendLiftReduction,  ///< (P,V) -> ((P^{+µ})^{j→}, V^{+*}) (Thm 5.9/Cor 5.11).
};

/// Human-readable name of a rule (for explanations and the benches).
std::string RuleName(RuleId id);

/// A certificate that the natural candidates w.r.t. the *original* instance
/// contain a potential rewriting. `chain` lists any transformations applied
/// (§5) followed by the direct condition that fired on the transformed
/// instance. All transformations used preserve the natural candidates (or
/// their ^{+µ}/lift images, Prop 5.10), so the certificate transfers back.
struct CompletenessFinding {
  std::vector<RuleId> chain;
  /// True when the guarantee covers only P≥k (not P≥k_r//). Informational:
  /// the engine always tests both candidates regardless.
  bool sub_candidate_only = true;
  /// Description of the fired condition for explanations.
  std::string detail;
};

/// A certificate that no rewriting of P using V exists, from a violated
/// necessary condition (possibly detected on a §5-transformed instance; the
/// transformations preserve (non)existence of rewritings).
struct NecessaryViolation {
  RuleId rule;
  std::string detail;
};

/// Result of evaluating the paper's conditions on an instance.
struct ConditionsReport {
  std::optional<NecessaryViolation> violation;
  std::optional<CompletenessFinding> completeness;
};

/// Evaluates all necessary and completeness conditions on (p, v), including
/// recursive application of the Section-5 transformations (each transform
/// kind is applied at most once per chain). Requires nonempty p, v with
/// depth(v) <= depth(p); `ViolatesBasicNecessaryConditions` must be checked
/// by the caller first for the k > d case.
[[nodiscard]] ConditionsReport EvaluateConditions(const Pattern& p, const Pattern& v);

/// Checks the depth and selection-label necessary conditions on (p, v).
[[nodiscard]] std::optional<NecessaryViolation> ViolatesBasicNecessaryConditions(
    const Pattern& p, const Pattern& v);

}  // namespace xpv

#endif  // XPV_REWRITE_RULES_H_
