#include "rewrite/baseline.h"

#include <cassert>

#include "containment/homomorphism.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "rewrite/candidates.h"
#include "rewrite/rules.h"

namespace xpv {

bool HomEquivalent(const Pattern& a, const Pattern& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a.IsEmpty() == b.IsEmpty();
  return ExistsPatternHomomorphism(a, b) && ExistsPatternHomomorphism(b, a);
}

BaselineResult HomomorphismBaselineRewrite(const Pattern& p,
                                           const Pattern& v) {
  assert(!p.IsEmpty() && !v.IsEmpty());
  BaselineResult result;

  const bool no_wildcard = HasNoWildcard(p) && HasNoWildcard(v);
  const bool no_descendant = HasNoDescendantEdge(p) && HasNoDescendantEdge(v);
  if (!no_wildcard && !no_descendant) {
    result.note = "inputs are not jointly in a homomorphism sub-fragment";
    return result;
  }
  result.applicable = true;

  if (ViolatesBasicNecessaryConditions(p, v).has_value()) {
    result.found = false;
    result.note = "necessary conditions violated";
    return result;
  }

  SelectionInfo vi(v);
  NaturalCandidates candidates = MakeNaturalCandidates(p, vi.depth());

  if (HomEquivalent(Compose(candidates.sub, v), p)) {
    result.found = true;
    result.rewriting = candidates.sub;
    result.note = "P>=k is a rewriting";
    return result;
  }
  // P>=k alone is potential in both fragments (Thm 4.3 resp. Thm 4.4), so
  // its failure is decisive; testing the relaxed candidate anyway is sound
  // (an equivalence hit is a genuine rewriting) and costs one more PTIME
  // check.
  if (!candidates.coincide &&
      HomEquivalent(Compose(candidates.relaxed, v), p)) {
    result.found = true;
    result.rewriting = candidates.relaxed;
    result.note = "P>=k_r// is a rewriting";
    return result;
  }

  result.found = false;
  result.note = "no natural candidate rewrites; none exists in this "
                "sub-fragment";
  return result;
}

}  // namespace xpv
