#include "rewrite/contained.h"

#include <cassert>
#include <deque>
#include <set>
#include <utility>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "rewrite/candidates.h"
#include "rewrite/rules.h"

namespace xpv {
namespace {

/// Nodes of `p` whose removal is legal (off the root and not holding the
/// output), i.e. deletable branch roots.
std::vector<NodeId> DeletableBranchRoots(const Pattern& p) {
  std::vector<char> holds_output(static_cast<size_t>(p.size()), 0);
  for (NodeId cur = p.output(); cur != kNoNode; cur = p.parent(cur)) {
    holds_output[static_cast<size_t>(cur)] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId n = 1; n < p.size(); ++n) {
    if (holds_output[static_cast<size_t>(n)] == 0) out.push_back(n);
  }
  return out;
}

}  // namespace

ContainedRewriteResult FindContainedRewriting(
    const Pattern& p, const Pattern& v,
    const ContainedRewriteOptions& options) {
  assert(!p.IsEmpty() && !v.IsEmpty());
  ContainedRewriteResult result;

  SelectionInfo pi(p);
  SelectionInfo vi(v);
  if (vi.depth() > pi.depth()) {
    result.note = "depth(V) > depth(P): no rewriting of any kind";
    return result;
  }

  // Generate the candidate pool: natural candidates, branch-deletion
  // variants (BFS, bounded), and single-selection-edge relaxations.
  NaturalCandidates natural = MakeNaturalCandidates(p, vi.depth());
  std::vector<Pattern> pool;
  std::set<std::string> seen;
  auto push = [&](Pattern candidate) {
    std::string key = candidate.CanonicalEncoding();
    if (seen.insert(std::move(key)).second) {
      pool.push_back(std::move(candidate));
    }
  };
  push(natural.sub);
  push(natural.relaxed);

  // Branch deletions (each deletion can only grow the composition, moving
  // toward maximality as long as containment in P survives).
  std::deque<std::pair<Pattern, int>> queue;
  queue.emplace_back(natural.sub, 0);
  while (!queue.empty() &&
         pool.size() < static_cast<size_t>(options.budget)) {
    auto [current, deletions] = std::move(queue.front());
    queue.pop_front();
    if (deletions >= options.max_branch_deletions) continue;
    for (NodeId n : DeletableBranchRoots(current)) {
      Pattern variant = RemoveSubtree(current, n);
      Pattern relaxed_variant = RelaxRootEdges(variant);
      push(variant);
      push(relaxed_variant);
      queue.emplace_back(std::move(variant), deletions + 1);
    }
  }

  // Single selection-edge relaxations of P>=k.
  if (options.relax_edges) {
    SelectionInfo si(natural.sub);
    for (int j = 1; j <= si.depth(); ++j) {
      if (natural.sub.edge(si.KNode(j)) == EdgeType::kDescendant) continue;
      Pattern variant = natural.sub;
      variant.set_edge(si.KNode(j), EdgeType::kDescendant);
      push(std::move(variant));
    }
  }

  // Evaluate the pool: keep candidates with R ∘ V ⊑ P.
  struct Scored {
    Pattern rewriting;
    Pattern composition;
  };
  std::vector<Scored> contained;
  for (const Pattern& candidate : pool) {
    if (result.candidates_examined >=
        static_cast<int>(options.budget)) {
      break;
    }
    ++result.candidates_examined;
    Pattern composition = Compose(candidate, v);
    if (composition.IsEmpty()) continue;
    if (Contained(composition, p)) {
      contained.push_back({candidate, std::move(composition)});
    }
  }
  result.candidates_contained = static_cast<int>(contained.size());
  if (contained.empty()) {
    result.note = "no examined candidate composes into P";
    return result;
  }

  // Pick a maximal one: no other contained candidate's composition
  // strictly contains it.
  int best = 0;
  for (int i = 1; i < static_cast<int>(contained.size()); ++i) {
    const Pattern& bc = contained[static_cast<size_t>(best)].composition;
    const Pattern& ic = contained[static_cast<size_t>(i)].composition;
    // ic strictly contains bc => i is a better (larger) rewriting.
    if (Contained(bc, ic) && !Contained(ic, bc)) best = i;
  }
  Scored& winner = contained[static_cast<size_t>(best)];
  result.found = true;
  result.rewriting = winner.rewriting;
  result.is_equivalent = Contained(p, winner.composition);
  result.note = result.is_equivalent
                    ? "maximal candidate is an equivalent rewriting"
                    : "maximal contained (non-equivalent) rewriting";
  return result;
}

}  // namespace xpv
