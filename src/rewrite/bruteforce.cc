#include "rewrite/bruteforce.h"

#include <cassert>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"

namespace xpv {

BruteForceOutcome BruteForceRewrite(const Pattern& p, const Pattern& v,
                                    const BruteForceOptions& options) {
  assert(!p.IsEmpty() && !v.IsEmpty());
  BruteForceOutcome outcome;

  SelectionInfo pi(p);
  SelectionInfo vi(v);
  const int d = pi.depth();
  const int k = vi.depth();
  if (k > d) {
    outcome.exhausted_max_nodes = true;
    return outcome;
  }
  const int target_depth = d - k;

  const Pattern sub = SubPattern(p, k);
  const int max_height = sub.Height();
  std::set<LabelId> sigma = SigmaLabels(sub);
  std::vector<LabelId> alphabet(sigma.begin(), sigma.end());
  alphabet.push_back(LabelStore::kWildcard);

  // Root labels that can produce the k-node label of P by glb with out(V).
  const LabelId out_v = v.label(v.output());
  const LabelId k_label = p.label(pi.KNode(k));
  auto root_ok = [&](LabelId l) {
    LabelId glb;
    if (!LabelGlb(l, out_v, &glb)) return false;
    return glb == k_label;
  };

  // BFS over node additions, deduplicated by canonical encoding (ignoring
  // the output designation, which is chosen per structure below).
  std::deque<Pattern> queue;
  std::set<std::string> seen;
  for (LabelId l : alphabet) {
    if (!root_ok(l)) continue;
    Pattern seed(l);
    if (seen.insert(seed.CanonicalEncoding()).second) queue.push_back(seed);
  }

  auto test_structure = [&](const Pattern& structure) -> bool {
    // Try every node at the required output depth.
    Pattern candidate = structure;
    for (NodeId n = 0; n < structure.size(); ++n) {
      candidate.set_output(n);
      {
        SelectionInfo ci(candidate);
        if (ci.depth() != target_depth) continue;
      }
      if (outcome.candidates_tested >= options.budget) return true;
      ++outcome.candidates_tested;
      if (Equivalent(Compose(candidate, v), p)) {
        outcome.found = candidate;
        return true;
      }
    }
    return false;
  };

  while (!queue.empty()) {
    Pattern current = std::move(queue.front());
    queue.pop_front();
    if (test_structure(current)) return outcome;
    if (outcome.candidates_tested >= options.budget) return outcome;

    if (current.size() >= options.max_nodes) continue;
    // Extend by one node in every position / label / edge type, pruning by
    // the height bound.
    for (NodeId parent = 0; parent < current.size(); ++parent) {
      for (LabelId l : alphabet) {
        for (EdgeType et : {EdgeType::kChild, EdgeType::kDescendant}) {
          Pattern extended = current;
          extended.AddChild(parent, l, et);
          if (extended.Height() > max_height) continue;
          if (seen.insert(extended.CanonicalEncoding()).second) {
            queue.push_back(std::move(extended));
          }
        }
      }
    }
  }

  outcome.exhausted_max_nodes = true;
  return outcome;
}

}  // namespace xpv
