#include "rewrite/rules.h"

#include <cassert>

#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "rewrite/gnf.h"
#include "rewrite/stability.h"

namespace xpv {

std::string RuleName(RuleId id) {
  switch (id) {
    case RuleId::kDepthExceeded:
      return "depth-exceeded (Prop 3.1(1): k > d)";
    case RuleId::kSelectionLabelMismatch:
      return "selection-label-mismatch (Prop 3.1(3))";
    case RuleId::kEqualDepths:
      return "equal-depths (k = d)";
    case RuleId::kViewOutputIsRoot:
      return "view-output-is-root (Prop 3.5: k = 0)";
    case RuleId::kStableSubPattern:
      return "stable-sub-pattern (Thm 4.3)";
    case RuleId::kChildOnlyQueryPrefix:
      return "child-only-query-prefix (Thm 4.4)";
    case RuleId::kDescendantIntoViewOutput:
      return "descendant-into-view-output (Thm 4.9)";
    case RuleId::kChildOnlyViewPath:
      return "child-only-view-path (Thm 4.10)";
    case RuleId::kCorrespondingLastDescendant:
      return "corresponding-last-descendant (Thm 4.16)";
    case RuleId::kGeneralizedNormalForm:
      return "generalized-normal-form (Thm 5.4)";
    case RuleId::kStableReduction:
      return "stable-reduction (Prop 5.1 / Cor 5.2)";
    case RuleId::kSuffixReduction:
      return "suffix-reduction (Prop 5.6 / Cor 5.7)";
    case RuleId::kExtendLiftReduction:
      return "extend-lift-reduction (Thm 5.9 / Cor 5.11)";
  }
  return "unknown-rule";
}

std::optional<NecessaryViolation> ViolatesBasicNecessaryConditions(
    const Pattern& p, const Pattern& v) {
  assert(!p.IsEmpty() && !v.IsEmpty());
  SelectionInfo pi(p);
  SelectionInfo vi(v);
  const int d = pi.depth();
  const int k = vi.depth();
  if (k > d) {
    return NecessaryViolation{
        RuleId::kDepthExceeded,
        "depth(V) = " + std::to_string(k) + " exceeds depth(P) = " +
            std::to_string(d)};
  }
  // By Prop 3.1(3) applied to R∘V ≡ P: the i-node of R∘V is the i-node of V
  // for i < k, so its label (wildcard included, as a symbol) must equal the
  // label of the i-node of P.
  for (int i = 0; i < k; ++i) {
    LabelId lp = p.label(pi.KNode(i));
    LabelId lv = v.label(vi.KNode(i));
    if (lp != lv) {
      return NecessaryViolation{
          RuleId::kSelectionLabelMismatch,
          "selection labels differ at depth " + std::to_string(i) + ": P has " +
              LabelName(lp) + ", V has " + LabelName(lv)};
    }
  }
  // At depth k the label of R∘V is glb(label(root(R)), label(out(V))), which
  // must equal the k-node label of P; solvable iff out(V) is labeled '*' or
  // exactly like the k-node of P.
  LabelId lk = p.label(pi.KNode(k));
  LabelId lo = v.label(v.output());
  if (lo != LabelStore::kWildcard && lo != lk) {
    return NecessaryViolation{
        RuleId::kSelectionLabelMismatch,
        "out(V) is labeled " + LabelName(lo) + " but the k-node of P is " +
            LabelName(lk) + " (no glb can produce it)"};
  }
  return std::nullopt;
}

namespace {

/// Bitmask over the three transformation kinds; each may appear at most
/// once in a chain.
enum TransformBit {
  kUsedStable = 1,
  kUsedSuffix = 2,
  kUsedExtendLift = 4,
};

/// Checks the direct (non-transforming) completeness conditions on (p, v).
std::optional<CompletenessFinding> CheckDirectConditions(const Pattern& p,
                                                         const Pattern& v) {
  SelectionInfo pi(p);
  SelectionInfo vi(v);
  const int d = pi.depth();
  const int k = vi.depth();

  if (k == d) {
    return CompletenessFinding{{RuleId::kEqualDepths}, true,
                               "view depth equals query depth"};
  }
  if (k == 0) {
    return CompletenessFinding{{RuleId::kViewOutputIsRoot}, true,
                               "the output of V is its root"};
  }
  if (IsStableSufficient(SubPattern(p, k))) {
    return CompletenessFinding{{RuleId::kStableSubPattern}, true,
                               "P>=k satisfies a stability condition of "
                               "Prop 4.1"};
  }
  if (pi.ChildOnlyRange(0, k)) {
    return CompletenessFinding{{RuleId::kChildOnlyQueryPrefix}, true,
                               "the first k selection edges of P are child "
                               "edges"};
  }
  if (vi.SelectionEdge(k) == EdgeType::kDescendant) {
    return CompletenessFinding{{RuleId::kDescendantIntoViewOutput}, true,
                               "a descendant edge enters out(V)"};
  }
  if (vi.ChildOnlyRange(0, k)) {
    return CompletenessFinding{{RuleId::kChildOnlyViewPath}, false,
                               "the selection path of V has only child "
                               "edges"};
  }
  const int j = pi.DeepestDescendantSelectionEdge();
  if (j >= 1 && j <= k && vi.SelectionEdge(j) == EdgeType::kDescendant) {
    return CompletenessFinding{
        {RuleId::kCorrespondingLastDescendant}, true,
        "the last descendant selection edge of P (depth " +
            std::to_string(j) + ") corresponds to a descendant edge of V"};
  }
  if (IsInGeneralizedNormalForm(p)) {
    return CompletenessFinding{{RuleId::kGeneralizedNormalForm}, false,
                               "P is in GNF/*"};
  }
  return std::nullopt;
}

std::optional<CompletenessFinding> Evaluate(const Pattern& p, const Pattern& v,
                                            unsigned used_mask);

/// Tries a transformed instance; on success, prepends the transform id.
std::optional<CompletenessFinding> TryTransformed(
    RuleId transform, const std::string& detail, const Pattern& p2,
    const Pattern& v2, unsigned used_mask) {
  // Necessary violations on transformed instances also certify
  // nonexistence (the transforms preserve rewriting existence), but they
  // are surfaced by EvaluateConditions at the top level only when detected
  // there; inside the recursion we simply do not claim completeness from a
  // violated instance. (The engine has already failed the candidates, so a
  // completeness finding and a violation lead to the same verdict.)
  std::optional<CompletenessFinding> inner = Evaluate(p2, v2, used_mask);
  if (!inner.has_value()) return std::nullopt;
  CompletenessFinding out;
  out.chain.push_back(transform);
  out.chain.insert(out.chain.end(), inner->chain.begin(), inner->chain.end());
  out.sub_candidate_only = inner->sub_candidate_only;
  out.detail = detail + "; then " + inner->detail;
  return out;
}

std::optional<CompletenessFinding> Evaluate(const Pattern& p, const Pattern& v,
                                            unsigned used_mask) {
  if (auto direct = CheckDirectConditions(p, v)) return direct;

  SelectionInfo pi(p);
  SelectionInfo vi(v);
  const int d = pi.depth();
  const int k = vi.depth();

  // Transform 1 (Prop 5.1 / Cor 5.2): reduce to (P≥i, V≥i) for the largest
  // 1 <= i <= k with P≥i satisfying a stability condition. Requires the
  // i-node labels of P and V to be compatible, which the caller-verified
  // necessary conditions already guarantee for i < k.
  if ((used_mask & kUsedStable) == 0) {
    for (int i = k; i >= 1; --i) {
      if (!IsStableSufficient(SubPattern(p, i))) continue;
      auto result = TryTransformed(
          RuleId::kStableReduction,
          "reduced to (P>=" + std::to_string(i) + ", V>=" + std::to_string(i) +
              ") by stability of P>=" + std::to_string(i),
          SubPattern(p, i), SubPattern(v, i), used_mask | kUsedStable);
      if (result.has_value()) return result;
    }
  }

  // Transform 2 (Prop 5.6): with i the deepest descendant selection edge of
  // V, pass to (*//P≥i, *//V≥i). Natural candidates are preserved.
  if ((used_mask & kUsedSuffix) == 0) {
    const int i = vi.DeepestDescendantSelectionEdge();
    if (i >= 1) {
      auto result = TryTransformed(
          RuleId::kSuffixReduction,
          "passed to (*//P>=" + std::to_string(i) + ", *//V>=" +
              std::to_string(i) + ")",
          DescendantPrefix(LabelStore::kWildcard, SubPattern(p, i)),
          DescendantPrefix(LabelStore::kWildcard, SubPattern(v, i)),
          used_mask | kUsedSuffix);
      if (result.has_value()) return result;
    }
  }

  // Transform 3 (Thm 5.9 / Cor 5.11): for a j-node of P with a non-*
  // label (k <= j <= d), pass to ((P^{+µ})^{j→}, V^{+*}) with µ fresh.
  if ((used_mask & kUsedExtendLift) == 0) {
    for (int j = d; j >= k; --j) {
      if (p.label(pi.KNode(j)) == LabelStore::kWildcard) continue;
      LabelId mu = Labels().Fresh("mu");
      auto result = TryTransformed(
          RuleId::kExtendLiftReduction,
          "extended with µ and lifted the output to depth " +
              std::to_string(j),
          LiftOutput(Extend(p, mu), j), Extend(v, LabelStore::kWildcard),
          used_mask | kUsedExtendLift);
      if (result.has_value()) return result;
    }
  }

  return std::nullopt;
}

}  // namespace

ConditionsReport EvaluateConditions(const Pattern& p, const Pattern& v) {
  ConditionsReport report;
  report.violation = ViolatesBasicNecessaryConditions(p, v);
  if (report.violation.has_value()) return report;
  report.completeness = Evaluate(p, v, 0);
  return report;
}

}  // namespace xpv
