#!/usr/bin/env python3
"""Project-invariant linter: textual rules the compilers cannot express.

Registered as the `lint_invariants` ctest and run in the CI lint job.
Stdlib-only on purpose — it must run on a bare python3 anywhere.

Rules
-----
R1 raw-sync      No raw std sync primitive (std::mutex, std::shared_mutex,
                 std::condition_variable, the std lock RAII templates)
                 outside src/util/sync.h. Everything must go through the
                 capability-annotated wrappers so clang's thread-safety
                 analysis sees every acquisition.
R2 api-abort     No assert( / abort( in src/api/. The serving layer's
                 contract is structured ServiceStatus errors, never
                 process death (static_assert is fine: it fires at
                 compile time).
R3 fault-hooks   No XPV_FAULT_INJECTION preprocessor conditionals outside
                 src/util/fault.h. Fault points are the fault:: hooks, so
                 the OFF build compiles them to empty inlines uniformly —
                 scattered #ifdefs would fork the two builds' control flow.
R4 bench-out     Every --benchmark_out= in CMakeLists.txt / CI workflows
                 writes a SMOKE_*.json basename and never points into
                 bench/results/. Tracked BENCH_*.json baselines are
                 regenerated deliberately, never clobbered by a CI smoke
                 run.
R5 fault-sites   Every `fault::Point("<site>")` literal in src/ must
                 appear (as the same quoted literal) in
                 tests/fault_injection_test.cc — a fault hook without
                 chaos coverage is a hook nobody has ever seen fire.

Suppression: a line containing `lint-invariants: allow(<rule>)` in a
comment is exempt from <rule>. Each use should say why.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_GLOBS = ("src/**/*.h", "src/**/*.cc", "tests/**/*.h", "tests/**/*.cc",
             "bench/**/*.h", "bench/**/*.cc", "examples/**/*.cpp")
BUILD_FILES = ("CMakeLists.txt", "tests/compile_fail/CMakeLists.txt",
               ".github/workflows/ci.yml")

RAW_SYNC = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b")
API_ABORT = re.compile(r"(?<![_A-Za-z0-9])(?:assert|abort)\s*\(")
FAULT_COND = re.compile(
    r"^\s*#\s*(?:if|ifdef|ifndef|elif).*\bXPV_FAULT_INJECTION\b")
BENCH_OUT = re.compile(r"--benchmark_out=(\S+)")
FAULT_POINT = re.compile(r'fault::Point\(\s*"(?P<site>[^"]+)"\s*\)')
FAULT_TEST_FILE = "tests/fault_injection_test.cc"
ALLOW = re.compile(r"lint-invariants:\s*allow\((?P<rule>[\w-]+)\)")


def allowed(line, rule):
    m = ALLOW.search(line)
    return m is not None and m.group("rule") == rule


def strip_line_comment(line):
    """Removes // comments so commentary about std::mutex stays legal."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_tree(root):
    problems = []

    def report(path, lineno, rule, msg):
        problems.append(f"{path.relative_to(root)}:{lineno}: [{rule}] {msg}")

    for pattern in CPP_GLOBS:
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            is_sync_h = rel == "src/util/sync.h"
            is_api = rel.startswith("src/api/")
            is_fault_h = rel == "src/util/fault.h"
            for lineno, raw in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                line = strip_line_comment(raw)
                if not is_sync_h and RAW_SYNC.search(line) \
                        and not allowed(raw, "raw-sync"):
                    report(path, lineno, "raw-sync",
                           "raw std sync primitive; use util/sync.h "
                           "wrappers (they carry the thread-safety "
                           "annotations)")
                if is_api and API_ABORT.search(line) \
                        and not allowed(raw, "api-abort"):
                    report(path, lineno, "api-abort",
                           "assert/abort in the API layer; return a "
                           "structured ServiceStatus error instead")
                if not is_fault_h and FAULT_COND.search(line) \
                        and not allowed(raw, "fault-hooks"):
                    report(path, lineno, "fault-hooks",
                           "XPV_FAULT_INJECTION conditional outside "
                           "util/fault.h; use the fault:: hooks")

    # R5: every fault::Point site in src/ must be named (as the same quoted
    # literal) in the chaos suite, so new hooks always gain coverage.
    fault_test = root / FAULT_TEST_FILE
    covered = fault_test.read_text(encoding="utf-8") \
        if fault_test.exists() else ""
    for pattern in ("src/**/*.h", "src/**/*.cc"):
        for path in sorted(root.glob(pattern)):
            for lineno, raw in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                for m in FAULT_POINT.finditer(strip_line_comment(raw)):
                    site = m.group("site")
                    if allowed(raw, "fault-sites"):
                        continue
                    if f'"{site}"' not in covered:
                        report(path, lineno, "fault-sites",
                               f"fault site \"{site}\" is not referenced in "
                               f"{FAULT_TEST_FILE}; add it to the chaos "
                               "corpus (kKnownFaultSites) so it has "
                               "injection coverage")

    for rel in BUILD_FILES:
        path = root / rel
        if not path.exists():
            continue
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            for m in BENCH_OUT.finditer(raw):
                if allowed(raw, "bench-out"):
                    continue
                out = m.group(1).strip("'\"")
                name = out.rsplit("/", 1)[-1]
                if "bench/results" in out or not re.fullmatch(
                        r"SMOKE_[\w${}.-]+\.json", name):
                    report(path, lineno, "bench-out",
                           f"bench output '{out}' must be a SMOKE_*.json "
                           "outside bench/results/ (tracked BENCH_*.json "
                           "baselines are regenerated deliberately)")
    return problems


# ------------------------------------------------------------- self-test

BAD_SNIPPETS = {
    "raw-sync": "  std::mutex mu;\n",
    "api-abort": "  abort();\n",
    "fault-hooks": "#ifdef XPV_FAULT_INJECTION\n#endif\n",
}
GOOD_SNIPPETS = {
    "raw-sync": "  xpv::Mutex mu;  // wraps std::mutex\n",
    "api-abort": "  static_assert(sizeof(int) == 4);\n",
    "fault-hooks": "  fault::MaybeFail(\"memo-write\");\n",
}


def self_test():
    """Proves each rule still fires (and doesn't overfire) on canned input."""
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src/api").mkdir(parents=True)
        (root / "src/util").mkdir(parents=True)
        (root / "src/api/bad.cc").write_text(
            BAD_SNIPPETS["raw-sync"] + BAD_SNIPPETS["api-abort"]
            + BAD_SNIPPETS["fault-hooks"], encoding="utf-8")
        (root / "CMakeLists.txt").write_text(
            "--benchmark_out=bench/results/BENCH_oops.json\n",
            encoding="utf-8")
        (root / "src/util/hooked.cc").write_text(
            '  fault::Point("selftest.uncovered");\n', encoding="utf-8")
        problems = lint_tree(root)
        for rule in ("raw-sync", "api-abort", "fault-hooks", "bench-out",
                     "fault-sites"):
            if not any(f"[{rule}]" in p for p in problems):
                failures.append(f"rule {rule} did not fire on known-bad input")

        (root / "src/api/bad.cc").write_text(
            GOOD_SNIPPETS["raw-sync"] + GOOD_SNIPPETS["api-abort"]
            + GOOD_SNIPPETS["fault-hooks"], encoding="utf-8")
        (root / "CMakeLists.txt").write_text(
            "--benchmark_out=SMOKE_${bench_name}.json\n", encoding="utf-8")
        (root / "src/util/sync.h").write_text(
            "  std::mutex native_;  // the one legal home\n", encoding="utf-8")
        (root / "tests").mkdir()
        (root / FAULT_TEST_FILE).write_text(
            '    "selftest.uncovered",\n', encoding="utf-8")
        problems = lint_tree(root)
        if problems:
            failures.append("rules fired on known-good input: "
                            + "; ".join(problems))

        (root / "src/api/bad.cc").write_text(
            "  abort();  // lint-invariants: allow(api-abort) — self-test\n",
            encoding="utf-8")
        if lint_tree(root):
            failures.append("allow() suppression was not honored")

    if failures:
        print("lint_invariants self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("lint_invariants self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root to lint (default: this checkout)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own regression checks")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    problems = lint_tree(args.root.resolve())
    if problems:
        print(f"lint_invariants: {len(problems)} violation(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
