#!/usr/bin/env python3
"""AST-grounded error-contract checker: structural rules the compiler and
generic clang-tidy checks cannot express.

Registered as the `check_contracts` ctest and run in the CI lint job.
Stdlib-only on purpose — it must run on a bare python3 anywhere. The AST
comes from `clang++ -fsyntax-only -Xclang -ast-dump=json` over every
library TU listed in `compile_commands.json` (the same pinned clang the
CI lint leg already carries); without a clang binary the tree check
prints `[SKIP]` and exits 0 so the ctest registers as skipped, not
passed — the clang CI legs are where it bites.

Rules
-----
C1 service-result  Every public method of `xpv::Service` returns
                   `ServiceResult<T>`/`ServiceStatus` — the facade's
                   errors are structured values, never side channels.
                   The documented infallible accessors are allowlisted
                   BY NAME AND RETURN TYPE below; adding a public method
                   that can fail but returns something else is an error.
C2 api-throw       No *originating* throw inside `src/api/`: the facade
                   boundary may `throw;` (a bare rethrow propagating a
                   cancellation/fault exception up to the entry-point
                   wrapper that maps it to a structured error), but a
                   `throw expr` would mint an exception no caller of the
                   API layer is prepared for.
C3 discard-comment Every `(void)`-cast of a fallible value (the
                   `Result`/`Status`/`ServiceResult`/`ServiceStatus`
                   family) must carry a `// discard:` justification on
                   the same source line. The compiler's
                   `-Werror=unused-result` already rejects *bare*
                   discards; this closes the `(void)` escape hatch.
C4 wait-in-while   Every `CondVar::Wait`/`WaitFor` call sits inside a
                   `while` statement — PR 8's convention (predicates
                   re-checked around spurious wakeups), now structural.

Suppression: a line containing `check-contracts: allow(<rule>)` in a
comment is exempt from <rule>. Each use should say why.
"""

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

FALLIBLE_TYPE = re.compile(
    r"\b(?:Result|Status|ServiceResult|ServiceStatus)\b")
ALLOW = re.compile(r"check-contracts:\s*allow\((?P<rule>[\w-]+)\)")

# C1: public `Service` members that deliberately do NOT return a
# ServiceResult/ServiceStatus, keyed (name, return type as clang spells
# it). Each entry must be genuinely infallible or test-only telemetry —
# a lookup miss is encoded in the return value itself (null pointer,
# zero count), not an error condition that could be dropped.
SERVICE_INFALLIBLE = {
    # Registering an already-built document cannot fail (no parsing);
    # the handle is [[nodiscard]] so it cannot be lost either.
    ("AddDocument", "DocumentId"),
    ("num_documents", "int"),          # Plain count.
    ("num_views", "int"),              # Plain count (0 for stale handle).
    ("document", "const Tree *"),      # Null encodes stale/unknown.
    ("view", "const ViewDefinition *"),
    ("cache", "const ViewCache *"),
    ("stats", "ServiceStats"),         # Telemetry snapshot.
    ("oracle", "const ContainmentOracle &"),   # Test/telemetry accessor.
    ("pool_for_testing", "const ThreadPool *"),
    ("answer_cache", "const AnswerCache &"),
}


class Finding:
    def __init__(self, file, line, rule, msg):
        self.file = file
        self.line = line
        self.rule = rule
        self.msg = msg

    def key(self):
        return (self.file, self.line, self.rule, self.msg)

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.msg}"


class SourceLines:
    """Lazy per-file line lookup for comment checks (C3 suppressions)."""

    def __init__(self):
        self._cache = {}

    def line(self, path, lineno):
        if path not in self._cache:
            try:
                self._cache[path] = Path(path).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                self._cache[path] = []
        lines = self._cache[path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


def allowed(source_line, rule):
    m = ALLOW.search(source_line)
    return m is not None and m.group("rule") == rule


class AstWalker:
    """One pass over a clang JSON AST applying every rule.

    Clang's JSON omits `file`/`line` keys when unchanged from the
    previously printed node, so the walker threads current-position
    state through the traversal exactly as a JSON consumer must.
    """

    def __init__(self, root, sources, findings):
        self.root = str(root)
        self.sources = sources
        self.findings = findings
        self.cur_file = ""
        self.cur_line = 0

    # -- location bookkeeping ------------------------------------------

    def _advance(self, loc):
        """Updates (file, line) from a loc/range dict, handling macro
        expansion locs and clang's omit-if-unchanged compression."""
        if not isinstance(loc, dict):
            return
        # Macro expansions nest the real position one level down; prefer
        # the expansion site (where the code textually lives).
        if "expansionLoc" in loc:
            self._advance(loc["expansionLoc"])
            return
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _position(self, node):
        self._advance(node.get("loc"))
        rng = node.get("range")
        if isinstance(rng, dict):
            self._advance(rng.get("begin"))

    def _in_project(self):
        return self.cur_file.startswith(self.root)

    def _rel(self):
        return os.path.relpath(self.cur_file, self.root)

    def _report(self, rule, msg, line=None):
        lineno = self.cur_line if line is None else line
        src = self.sources.line(self.cur_file, lineno)
        if allowed(src, rule):
            return
        self.findings.append(Finding(self._rel(), lineno, rule, msg))

    # -- traversal ------------------------------------------------------

    def walk(self, node):
        self._walk(node, ancestors=[])

    def _walk(self, node, ancestors):
        if not isinstance(node, dict):
            return
        self._position(node)
        kind = node.get("kind", "")

        if kind == "CXXRecordDecl" and node.get("name") == "Service" \
                and self._in_project():
            self._check_service(node)
        if kind == "CXXThrowExpr":
            self._check_throw(node)
        if kind == "CStyleCastExpr":
            self._check_void_cast(node)
        if kind == "CXXMemberCallExpr":
            self._check_condvar_wait(node, ancestors)

        ancestors.append(node)
        for child in node.get("inner", []) or []:
            self._walk(child, ancestors)
        ancestors.pop()

    # -- C1: Service methods return ServiceResult/ServiceStatus --------

    def _check_service(self, record):
        if not record.get("completeDefinition"):
            return  # Forward declaration.
        access = "private"  # Class default.
        for child in record.get("inner", []) or []:
            self._position(child)
            kind = child.get("kind")
            if kind == "AccessSpecDecl":
                access = child.get("access", access)
                continue
            if kind != "CXXMethodDecl" or access != "public":
                continue
            if child.get("isImplicit"):
                continue
            name = child.get("name", "")
            if name in ("Service", "~Service", "operator="):
                continue
            qual = child.get("type", {}).get("qualType", "")
            ret = qual.split("(")[0].strip()
            if ret.startswith(("ServiceResult<", "ServiceStatus")):
                continue
            if (name, ret) in SERVICE_INFALLIBLE:
                continue
            self._report(
                "service-result",
                f"public Service::{name} returns '{ret}' — fallible facade "
                "entry points must return ServiceResult<T>/ServiceStatus "
                "(or be added to the checker's documented infallible "
                "allowlist)")

    # -- C2: no originating throw in src/api/ ---------------------------

    def _check_throw(self, node):
        rel = self._rel() if self._in_project() else ""
        if not rel.startswith("src/api/"):
            return
        # A bare `throw;` has no operand: it re-raises an in-flight
        # exception toward the facade's entry-point wrapper — allowed.
        if not node.get("inner"):
            return
        self._report(
            "api-throw",
            "originating throw in the API layer; return a structured "
            "ServiceResult/ServiceStatus error instead (bare rethrows "
            "to the boundary wrapper are the only exception)")

    # -- C3: (void)-discards need a // discard: justification -----------

    def _check_void_cast(self, node):
        if node.get("castKind") != "ToVoid" or not self._in_project():
            return
        inner = node.get("inner") or []
        if not inner:
            return
        sub_type = inner[0].get("type", {}).get("qualType", "")
        if not FALLIBLE_TYPE.search(sub_type):
            return
        line = self.cur_line
        src = self.sources.line(self.cur_file, line)
        if "// discard:" in src:
            return
        self._report(
            "discard-comment",
            f"(void)-discard of fallible '{sub_type}' without a "
            "`// discard:` justification on the same line", line=line)

    # -- C4: CondVar waits sit in while loops ---------------------------

    def _check_condvar_wait(self, node, ancestors):
        if not self._in_project():
            return
        callee = self._find_member_expr(node)
        if callee is None:
            return
        if callee.get("name") not in ("Wait", "WaitFor"):
            return
        base_type = self._member_base_type(callee)
        if "CondVar" not in base_type:
            return
        line = self.cur_line
        for anc in reversed(ancestors):
            k = anc.get("kind")
            if k == "WhileStmt":
                return
            if k in ("FunctionDecl", "CXXMethodDecl", "LambdaExpr"):
                break
        self._report(
            "wait-in-while",
            "CondVar wait outside a while loop — condition-variable "
            "predicates must be re-checked in a `while (!cond) cv.Wait(mu)` "
            "loop (spurious wakeups, PR 8 discipline)", line=line)

    @staticmethod
    def _find_member_expr(call):
        for child in call.get("inner", []) or []:
            if child.get("kind") == "MemberExpr":
                return child
        return None

    @staticmethod
    def _member_base_type(member):
        for child in member.get("inner", []) or []:
            t = child.get("type", {}).get("qualType", "")
            if t:
                return t
        return ""


# --------------------------------------------------------------- driver

def find_clang(explicit):
    """Resolves the clang++ to dump ASTs with (pinned name first)."""
    candidates = [explicit] if explicit else []
    candidates += ["clang++-18", "clang++"]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def library_tus(build_dir, root):
    """Library TUs (src/**/*.cc) from the compile database, with their
    compile arguments (minus output/dep flags)."""
    db_path = Path(build_dir) / "compile_commands.json"
    if not db_path.exists():
        raise FileNotFoundError(
            f"{db_path} not found — configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON first")
    tus = []
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        file = Path(entry["file"])
        try:
            rel = file.resolve().relative_to(Path(root).resolve())
        except ValueError:
            continue
        if not (rel.parts and rel.parts[0] == "src" and
                rel.suffix == ".cc"):
            continue
        args = entry.get("arguments")
        if args is None:
            args = shlex.split(entry["command"])
        # Strip compile/output/dep flags; we re-run as -fsyntax-only.
        cleaned, skip = [], False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", str(file)):
                continue
            if a in ("-o", "-MF", "-MT", "-MQ"):
                skip = True
                continue
            if a in ("-MD", "-MMD"):
                continue
            cleaned.append(a)
        tus.append((str(file), cleaned, entry.get("directory", ".")))
    return tus


def dump_ast(clang, file, args, directory):
    cmd = [clang] + args + [
        "-fsyntax-only", "-Wno-everything",
        "-Xclang", "-ast-dump=json", file]
    proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                          text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"clang AST dump failed for {file}:\n{proc.stderr[:4000]}")
    return json.loads(proc.stdout)


def check_tree(root, build_dir, clang_arg):
    clang = find_clang(clang_arg)
    if clang is None:
        # The compilers that CAN run this rule set live on the CI clang
        # legs; a gcc-only host skips rather than silently passing.
        print("[SKIP] check_contracts: no clang++ found "
              "(AST dumps require clang; the CI lint leg runs this)")
        return 0

    sources = SourceLines()
    findings = []
    tus = library_tus(build_dir, root)
    if not tus:
        print("check_contracts: no library TUs in compile_commands.json")
        return 1
    for file, args, directory in tus:
        ast = dump_ast(clang, file, args, directory)
        AstWalker(root, sources, findings).walk(ast)
        del ast  # The dumps are large; free eagerly between TUs.

    unique = {}
    for f in findings:
        unique.setdefault(f.key(), f)
    problems = sorted(unique.values(), key=lambda f: (f.file, f.line))
    if problems:
        print(f"check_contracts: {len(problems)} violation(s) "
              f"across {len(tus)} TU(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_contracts: clean ({len(tus)} TU(s))")
    return 0


# ------------------------------------------------------------ self-test
#
# Canned miniature ASTs in clang's JSON shape (sparse file/line keys and
# all) prove each rule fires on known-bad input and stays quiet on
# known-good input — without needing a clang binary, so this half runs
# on every host.

def _loc(file=None, line=None):
    loc = {}
    if file is not None:
        loc["file"] = file
    if line is not None:
        loc["line"] = line
    return loc


def _fake_service(method_name, ret, access="public", implicit=False):
    method = {"kind": "CXXMethodDecl", "name": method_name,
              "type": {"qualType": f"{ret} (int)"},
              "loc": _loc(line=10)}
    if implicit:
        method["isImplicit"] = True
    return {
        "kind": "CXXRecordDecl", "name": "Service",
        "completeDefinition": True,
        "loc": _loc(file="/fake/src/api/service.h", line=5),
        "inner": [
            {"kind": "AccessSpecDecl", "access": access},
            method,
        ],
    }


def self_test():
    import tempfile

    failures = []

    def run_case(name, tree, expect_rules, source_files=None):
        with tempfile.TemporaryDirectory() as tmp:
            fake_root = Path(tmp) / "fake"
            (fake_root / "src/api").mkdir(parents=True)
            (fake_root / "src/util").mkdir(parents=True)
            for rel, text in (source_files or {}).items():
                (fake_root / rel).write_text(text, encoding="utf-8")

            def rebase(node):
                if isinstance(node, dict):
                    loc = node.get("loc")
                    if isinstance(loc, dict) and "file" in loc:
                        loc["file"] = loc["file"].replace(
                            "/fake", str(fake_root))
                    for child in node.get("inner", []) or []:
                        rebase(child)
            rebase(tree)

            findings = []
            AstWalker(str(fake_root), SourceLines(), findings).walk(tree)
            got = sorted({f.rule for f in findings})
            if got != sorted(expect_rules):
                failures.append(
                    f"{name}: expected rules {sorted(expect_rules)}, "
                    f"got {got} ({[str(f) for f in findings]})")

    tu = lambda *inner: {"kind": "TranslationUnitDecl",
                         "inner": list(inner)}

    # C1 fires: a public fallible-looking method returning bool.
    run_case("service-bad",
             tu(_fake_service("RemoveEverything", "bool")),
             ["service-result"])
    # C1 quiet: ServiceStatus return, allowlisted accessor, private
    # helper, implicit member.
    run_case("service-ok", tu(
        _fake_service("RemoveDocument", "ServiceStatus"),
        _fake_service("num_documents", "int"),
        _fake_service("Helper", "bool", access="private"),
        _fake_service("operator=", "Service &", implicit=True)), [])

    # C2 fires on an originating throw in src/api, quiet on a bare
    # rethrow and on throws outside the API layer.
    throw_expr = {"kind": "CXXThrowExpr",
                  "loc": _loc(file="/fake/src/api/service.cc", line=42),
                  "inner": [{"kind": "CXXConstructExpr",
                             "type": {"qualType": "std::runtime_error"}}]}
    rethrow = {"kind": "CXXThrowExpr",
               "loc": _loc(file="/fake/src/api/service.cc", line=50)}
    outside = {"kind": "CXXThrowExpr",
               "loc": _loc(file="/fake/src/util/cancel.h", line=7),
               "inner": [{"kind": "CXXConstructExpr",
                          "type": {"qualType": "CancelledError"}}]}
    run_case("api-throw-bad", tu(throw_expr), ["api-throw"])
    run_case("api-throw-ok", tu(rethrow, outside), [])

    # C3: (void)-cast of a ServiceStatus without / with a `// discard:`
    # comment; a (void)-cast of a non-fallible type stays quiet.
    def void_cast(line, sub_type):
        return {"kind": "CStyleCastExpr", "castKind": "ToVoid",
                "loc": _loc(file="/fake/src/util/u.cc", line=line),
                "inner": [{"kind": "CallExpr",
                           "type": {"qualType": sub_type}}]}
    ucc = ("src/util/u.cc",
           "\n".join(["// 1", "(void)F();  // plain, no comment",
                      "(void)G();  // discard: probe only",
                      "(void)H();  // not fallible"]) + "\n")
    run_case("discard-bad", tu(void_cast(2, "ServiceStatus")),
             ["discard-comment"], dict([ucc]))
    run_case("discard-ok", tu(void_cast(3, "ServiceStatus"),
                              void_cast(4, "int")), [], dict([ucc]))

    # C4: a CondVar::Wait under an IfStmt fires; under a WhileStmt it
    # doesn't; WaitFor on a non-CondVar type stays quiet.
    def wait_call(line, member="Wait", base="xpv::CondVar"):
        return {"kind": "CXXMemberCallExpr",
                "loc": _loc(file="/fake/src/util/u.cc", line=line),
                "inner": [{"kind": "MemberExpr", "name": member,
                           "inner": [{"kind": "DeclRefExpr",
                                      "type": {"qualType": base}}]}]}
    in_fn = lambda stmt_kind, call: {
        "kind": "CXXMethodDecl", "name": "f",
        "type": {"qualType": "void ()"},
        "inner": [{"kind": "CompoundStmt",
                   "inner": [{"kind": stmt_kind, "inner": [call]}]}]}
    run_case("wait-bad", tu(in_fn("IfStmt", wait_call(2))),
             ["wait-in-while"], dict([ucc]))
    run_case("wait-ok", tu(
        in_fn("WhileStmt", wait_call(3)),
        in_fn("IfStmt", wait_call(4, "WaitFor", "SomethingElse"))),
        [], dict([ucc]))

    # Suppression honored: the allow() comment silences its rule.
    sup = ("src/util/u.cc",
           "\n".join(["// 1",
                      "(void)F();  // check-contracts: allow(discard-comment)"
                      " — self-test"]) + "\n")
    run_case("suppression", tu(void_cast(2, "ServiceStatus")), [],
             dict([sup]))

    if failures:
        print("check_contracts self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("check_contracts self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root (default: this checkout)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary for AST dumps "
                             "(default: clang++-18, then clang++)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's own regression checks")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    build_dir = args.build_dir or (root / "build")
    return check_tree(str(root), build_dir, args.clang)


if __name__ == "__main__":
    sys.exit(main())
