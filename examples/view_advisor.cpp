// View advisor: given a weighted query workload, recommend which views to
// materialize (the paper's fourth open problem), then prove the
// recommendation out by running the workload through a ViewCache over a
// sample document.

#include <cstdio>
#include <vector>

#include "api/xpv.h"

namespace {

xpv::Tree BuildShop() {
  using namespace xpv;
  Tree doc(L("shop"));
  for (int d = 0; d < 4; ++d) {
    NodeId dept = doc.AddChild(doc.root(), L("dept"));
    for (int i = 0; i < 10; ++i) {
      NodeId item = doc.AddChild(dept, L("item"));
      NodeId price = doc.AddChild(item, L("price"));
      doc.AddChild(price, L("amount"));
      doc.AddChild(item, L("name"));
      if (i % 2 == 0) {
        NodeId review = doc.AddChild(item, L("review"));
        doc.AddChild(review, L("stars"));
      }
    }
  }
  NodeId staff = doc.AddChild(doc.root(), L("staff"));
  doc.AddChild(staff, L("roster"));
  return doc;
}

}  // namespace

int main() {
  using namespace xpv;

  // The workload: queries with observed frequencies.
  std::vector<WorkloadQuery> workload = {
      {MustParseXPath("shop/dept/item/price/amount"), 40.0},
      {MustParseXPath("shop/dept/item/name"), 25.0},
      {MustParseXPath("shop/dept/item[review]/price"), 10.0},
      {MustParseXPath("shop/dept/item/review/stars"), 8.0},
      {MustParseXPath("shop/staff/roster"), 2.0},
  };

  std::printf("Workload (%zu queries):\n", workload.size());
  for (const WorkloadQuery& q : workload) {
    std::printf("  %-38s weight %.0f\n", ToXPath(q.pattern).c_str(),
                q.weight);
  }

  // Recommend views.
  ViewSelectionOptions options;
  options.max_views = 2;
  ViewSelectionResult selection = SelectViews(workload, options);
  std::printf("\nRecommended views (budget %d):\n", options.max_views);
  for (const CandidateView& view : selection.chosen) {
    std::printf("  %-28s covers %zu queries (weight %.0f)\n",
                ToXPath(view.pattern).c_str(), view.answers.size(),
                view.covered_weight);
  }
  std::printf("Coverage: %.0f / %.0f workload weight (%.0f%%)\n",
              selection.covered_weight, selection.total_weight,
              100.0 * selection.covered_weight / selection.total_weight);

  // Prove it out: serve the workload from the chosen views through the
  // facade.
  Service service;
  DocumentId shop = service.AddDocument(BuildShop());
  const Tree& doc = *service.document(shop);
  for (size_t i = 0; i < selection.chosen.size(); ++i) {
    ServiceResult<ViewId> added = service.AddView(
        shop, "view" + std::to_string(i), selection.chosen[i].pattern);
    if (!added.ok()) {
      std::fprintf(stderr, "[%s] %s\n", ToString(added.error().code),
                   added.error().message.c_str());
      return 1;
    }
  }
  std::printf("\nReplaying the workload against a %d-node document:\n",
              doc.size());
  int mismatches = 0;
  for (const WorkloadQuery& q : workload) {
    ServiceResult<Answer> answer = service.Answer(shop, q.pattern);
    if (!answer.ok()) {
      ++mismatches;
      continue;
    }
    std::vector<NodeId> direct = Eval(q.pattern, doc);
    if (answer.value().outputs != direct) ++mismatches;
    std::printf("  %-38s %s (%zu results)\n", ToXPath(q.pattern).c_str(),
                answer.value().hit ? "HIT " : "miss",
                answer.value().outputs.size());
  }
  ServiceStats stats = service.stats();
  std::printf("\nHit rate: %llu/%llu; all answers correct: %s\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.queries),
              mismatches == 0 ? "yes" : "NO");
  return mismatches == 0 ? 0 : 1;
}
