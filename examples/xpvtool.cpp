// xpvtool: command-line front end to the library.
//
//   xpvtool rewrite  <query> <view>         decide rewriting existence
//   xpvtool contained <p1> <p2>             decide P1 ⊑ P2 (with witness)
//   xpvtool equivalent <p1> <p2>            decide P1 ≡ P2
//   xpvtool eval <query> <file.xml>         run a query over a document
//   xpvtool answer <query> <view> <file.xml>  answer via the view
//   xpvtool minimize <pattern>              remove redundant branches
//   xpvtool dot <pattern>                   Graphviz DOT of a pattern
//
// Exit code: 0 on "yes"/found/success, 1 on "no"/not-found, 2 on usage or
// input errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/xpv.h"

namespace {

using namespace xpv;

int Usage() {
  std::fprintf(stderr,
               "usage: xpvtool rewrite <query> <view>\n"
               "       xpvtool contained <p1> <p2>\n"
               "       xpvtool equivalent <p1> <p2>\n"
               "       xpvtool eval <query> <file.xml>\n"
               "       xpvtool answer <query> <view> <file.xml>\n"
               "       xpvtool minimize <pattern>\n"
               "       xpvtool dot <pattern>\n");
  return 2;
}

bool ParseOrComplain(const char* what, const char* expr, Pattern* out) {
  Result<Pattern> parsed = ParseXPath(expr);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, parsed.error().c_str());
    return false;
  }
  *out = parsed.take();
  return true;
}

bool LoadXml(const char* path, Tree* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Tree> parsed = ParseXml(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, parsed.error().c_str());
    return false;
  }
  *out = parsed.take();
  return true;
}

int CmdRewrite(const char* qexpr, const char* vexpr) {
  Pattern p = Pattern::Empty(), v = Pattern::Empty();
  if (!ParseOrComplain("query", qexpr, &p) ||
      !ParseOrComplain("view", vexpr, &v)) {
    return 2;
  }
  RewriteOptions options;
  options.enable_brute_force = true;
  options.brute_force_max_nodes = 5;
  options.brute_force_budget = 5000;
  RewriteResult result = DecideRewrite(p, v, options);
  std::printf("%s\n", result.explanation.c_str());
  if (result.status == RewriteStatus::kFound) {
    std::printf("rewriting: %s\n", ToXPath(result.rewriting).c_str());
    return 0;
  }
  return 1;
}

int CmdContained(const char* e1, const char* e2, bool both_ways) {
  Pattern p1 = Pattern::Empty(), p2 = Pattern::Empty();
  if (!ParseOrComplain("p1", e1, &p1) || !ParseOrComplain("p2", e2, &p2)) {
    return 2;
  }
  if (both_ways) {
    bool eq = Equivalent(p1, p2);
    std::printf("%s\n", eq ? "equivalent" : "not equivalent");
    return eq ? 0 : 1;
  }
  ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
  if (Contained(p1, p2, &witness)) {
    std::printf("contained\n");
    return 0;
  }
  std::printf("not contained; counterexample tree:\n%s",
              witness.tree.ToAscii().c_str());
  std::printf("(output at depth %d is selected by P1 but not by P2)\n",
              witness.tree.Depth(witness.output));
  return 1;
}

int CmdEval(const char* qexpr, const char* path) {
  Pattern p = Pattern::Empty();
  Tree doc(LabelStore::kBottom);
  if (!ParseOrComplain("query", qexpr, &p) || !LoadXml(path, &doc)) {
    return 2;
  }
  std::vector<NodeId> outputs = Eval(p, doc);
  std::printf("%zu result(s)\n", outputs.size());
  for (NodeId o : outputs) {
    std::printf("-- node %d (depth %d):\n%s", o, doc.Depth(o),
                doc.ExtractSubtree(o).ToAscii().c_str());
  }
  return outputs.empty() ? 1 : 0;
}

int CmdAnswer(const char* qexpr, const char* vexpr, const char* path) {
  Tree doc(LabelStore::kBottom);
  if (!LoadXml(path, &doc)) return 2;
  // Serve through the facade: every malformed input comes back as a
  // structured ServiceError (with caret context for XPath) instead of an
  // abort.
  Service service;
  DocumentId id = service.AddDocument(std::move(doc));
  ServiceResult<ViewId> view = service.AddView(id, "view", vexpr);
  if (!view.ok()) {
    std::fprintf(stderr, "view: [%s] %s\n", ToString(view.error().code),
                 view.error().message.c_str());
    return 2;
  }
  ServiceResult<Answer> answer = service.Answer(id, qexpr);
  if (!answer.ok()) {
    std::fprintf(stderr, "query: [%s] %s\n", ToString(answer.error().code),
                 answer.error().message.c_str());
    return 2;
  }
  if (!answer.value().hit) {
    RewriteResult rewrite = DecideRewrite(
        ParseXPath(qexpr).take(), service.view(view.value())->pattern);
    std::printf("no equivalent rewriting: %s\n",
                rewrite.explanation.c_str());
    return 1;
  }
  std::printf("rewriting %s over view '%s': %zu result(s)\n",
              ToXPath(answer.value().rewriting).c_str(),
              answer.value().view_name.c_str(),
              answer.value().outputs.size());
  bool consistent =
      answer.value().outputs ==
      Eval(ParseXPath(qexpr).take(), *service.document(id));
  std::printf("cross-check vs direct evaluation: %s\n",
              consistent ? "identical" : "MISMATCH (bug)");
  return consistent ? 0 : 2;
}

int CmdMinimize(const char* expr) {
  Pattern p = Pattern::Empty();
  if (!ParseOrComplain("pattern", expr, &p)) return 2;
  Pattern minimized = RemoveRedundantBranches(p);
  std::printf("%s\n", ToXPath(minimized).c_str());
  return 0;
}

int CmdDot(const char* expr) {
  Pattern p = Pattern::Empty();
  if (!ParseOrComplain("pattern", expr, &p)) return 2;
  std::printf("%s", PatternToDot(p, expr).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "rewrite") == 0 && argc == 4) {
    return CmdRewrite(argv[2], argv[3]);
  }
  if (std::strcmp(cmd, "contained") == 0 && argc == 4) {
    return CmdContained(argv[2], argv[3], /*both_ways=*/false);
  }
  if (std::strcmp(cmd, "equivalent") == 0 && argc == 4) {
    return CmdContained(argv[2], argv[3], /*both_ways=*/true);
  }
  if (std::strcmp(cmd, "eval") == 0 && argc == 4) {
    return CmdEval(argv[2], argv[3]);
  }
  if (std::strcmp(cmd, "answer") == 0 && argc == 5) {
    return CmdAnswer(argv[2], argv[3], argv[4]);
  }
  if (std::strcmp(cmd, "minimize") == 0 && argc == 3) {
    return CmdMinimize(argv[2]);
  }
  if (std::strcmp(cmd, "dot") == 0 && argc == 3) {
    return CmdDot(argv[2]);
  }
  return Usage();
}
