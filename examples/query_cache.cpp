// Query-cache scenario: the application the paper's introduction motivates
// (XPath caching a la [3,5,13,18], but with a *complete* rewriting test).
//
// A synthetic "digital library" document is queried by a stream of XPath
// queries; two views are materialized. Every query is answered through the
// cache when an equivalent rewriting exists, otherwise evaluated directly.
// The demo prints per-query routing and the final hit-rate statistics, and
// cross-checks every cached answer against direct evaluation.

#include <cstdio>
#include <vector>

#include "eval/evaluator.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "views/view_cache.h"
#include "xml/tree.h"

namespace {

xpv::Tree BuildLibrary(int shelves, int books_per_shelf) {
  using namespace xpv;
  Tree doc(L("library"));
  for (int s = 0; s < shelves; ++s) {
    NodeId shelf = doc.AddChild(doc.root(), L("shelf"));
    for (int b = 0; b < books_per_shelf; ++b) {
      NodeId book = doc.AddChild(shelf, L("book"));
      NodeId title = doc.AddChild(book, L("title"));
      doc.AddChild(title, L("text"));
      NodeId author = doc.AddChild(book, L("author"));
      doc.AddChild(author, L("name"));
      if (b % 3 == 0) doc.AddChild(book, L("award"));
    }
    doc.AddChild(shelf, L("label"));
  }
  NodeId admin = doc.AddChild(doc.root(), L("admin"));
  doc.AddChild(admin, L("inventory"));
  return doc;
}

}  // namespace

int main() {
  using namespace xpv;

  Tree doc = BuildLibrary(/*shelves=*/8, /*books_per_shelf=*/12);
  std::printf("Library document: %d nodes\n\n", doc.size());

  ViewCache cache(doc);
  cache.AddView({"books", MustParseXPath("library/shelf/book")});
  cache.AddView({"authors", MustParseXPath("library//author")});

  const char* queries[] = {
      "library/shelf/book/title",        // Rewrites over "books".
      "library/shelf/book[award]",       // Rewrites over "books".
      "library/shelf/book/author/name",  // Rewrites over "books".
      "library//author/name",            // Rewrites over "authors".
      "library/shelf/label",             // Miss: outside both views.
      "library/admin/inventory",         // Miss.
      "library/shelf/book//text",        // Rewrites over "books".
      "library//book[author]/title",     // Tricky: // vs child in view.
  };

  int cross_check_failures = 0;
  for (const char* expr : queries) {
    Pattern query = MustParseXPath(expr);
    CacheAnswer answer = cache.Answer(query);
    std::vector<NodeId> direct = Eval(query, doc);
    bool correct = answer.outputs == direct;
    cross_check_failures += correct ? 0 : 1;
    std::printf("%-34s -> %-22s %3zu results, rewriting: %-14s %s\n", expr,
                answer.hit ? ("HIT via '" + answer.view_name + "'").c_str()
                           : "miss (direct eval)",
                answer.outputs.size(),
                answer.hit ? ToXPath(answer.rewriting).c_str() : "-",
                correct ? "" : "  <-- WRONG ANSWER");
  }

  const CacheStats& stats = cache.stats();
  std::printf("\n%llu queries, %llu cache hits (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.hits),
              100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.queries));
  std::printf("All answers cross-checked against direct evaluation: %s\n",
              cross_check_failures == 0 ? "OK" : "FAILURES!");
  return cross_check_failures == 0 ? 0 : 1;
}
