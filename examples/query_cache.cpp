// Query-cache scenario: the application the paper's introduction motivates
// (XPath caching a la [3,5,13,18], but with a *complete* rewriting test),
// served through the multi-document `xpv::Service` facade.
//
// A synthetic "digital library" document is queried by a stream of XPath
// queries; two views are materialized. The whole stream is answered in one
// `AnswerBatch` call (dedup, shared candidate bundles, worker-parallel
// shards), queries that cannot be answered from a view fall back to direct
// evaluation, and a malformed query fails its own slot without disturbing
// the rest. The demo prints per-query routing and the final statistics,
// and cross-checks every answer against direct evaluation.

#include <cstdio>
#include <vector>

#include "api/xpv.h"

namespace {

xpv::Tree BuildLibrary(int shelves, int books_per_shelf) {
  using namespace xpv;
  Tree doc(L("library"));
  for (int s = 0; s < shelves; ++s) {
    NodeId shelf = doc.AddChild(doc.root(), L("shelf"));
    for (int b = 0; b < books_per_shelf; ++b) {
      NodeId book = doc.AddChild(shelf, L("book"));
      NodeId title = doc.AddChild(book, L("title"));
      doc.AddChild(title, L("text"));
      NodeId author = doc.AddChild(book, L("author"));
      doc.AddChild(author, L("name"));
      if (b % 3 == 0) doc.AddChild(book, L("award"));
    }
    doc.AddChild(shelf, L("label"));
  }
  NodeId admin = doc.AddChild(doc.root(), L("admin"));
  doc.AddChild(admin, L("inventory"));
  return doc;
}

}  // namespace

int main() {
  using namespace xpv;

  Service service;
  DocumentId library = service.AddDocument(BuildLibrary(8, 12));
  const Tree& doc = *service.document(library);
  std::printf("Library document: %d nodes\n\n", doc.size());

  for (const auto& [name, xpath] :
       {std::pair{"books", "library/shelf/book"},
        std::pair{"authors", "library//author"}}) {
    ServiceResult<ViewId> view = service.AddView(library, name, xpath);
    if (!view.ok()) {
      std::fprintf(stderr, "[%s] %s\n", ToString(view.error().code),
                   view.error().message.c_str());
      return 1;
    }
  }

  const char* queries[] = {
      "library/shelf/book/title",        // Rewrites over "books".
      "library/shelf/book[award]",       // Rewrites over "books".
      "library/shelf/book/author/name",  // Rewrites over "books".
      "library//author/name",            // Rewrites over "authors".
      "library/shelf/label",             // Miss: outside both views.
      "library/admin/inventory",         // Miss.
      "library/shelf/book//text",        // Rewrites over "books".
      "library//book[author]/title",     // Tricky: // vs child in view.
      "library/shelf/book[",             // Malformed: fails its slot only.
  };

  std::vector<BatchItem> batch;
  for (const char* expr : queries) batch.push_back({library, expr});
  ServiceResult<BatchAnswers> answered = service.AnswerBatch(batch, 4);
  if (!answered.ok()) {
    std::fprintf(stderr, "[%s] %s\n", ToString(answered.error().code),
                 answered.error().message.c_str());
    return 1;
  }

  int cross_check_failures = 0;
  for (size_t i = 0; i < answered.value().size(); ++i) {
    const char* expr = queries[i];
    const ServiceResult<Answer>& slot = answered.value().answers[i];
    if (!slot.ok()) {
      std::printf("%-34s -> [%s] position %lld\n", expr,
                  ToString(slot.error().code),
                  static_cast<long long>(slot.error().offset));
      continue;
    }
    const Answer& answer = slot.value();
    std::vector<NodeId> direct = Eval(ParseXPath(expr).take(), doc);
    bool correct = answer.outputs == direct;
    cross_check_failures += correct ? 0 : 1;
    std::printf("%-34s -> %-22s %3zu results, rewriting: %-14s %s\n", expr,
                answer.hit ? ("HIT via '" + answer.view_name + "'").c_str()
                           : "miss (direct eval)",
                answer.outputs.size(),
                answer.hit ? ToXPath(answer.rewriting).c_str() : "-",
                correct ? "" : "  <-- WRONG ANSWER");
  }

  // A repeated batch answers from the epoch-keyed memo: no new rewrite
  // work, same answers (the planner replays the memoized scans).
  const uint64_t oracle_misses_before = service.stats().oracle_misses;
  ServiceResult<BatchAnswers> repeat = service.AnswerBatch(batch, 4);
  if (!repeat.ok()) return 1;
  for (size_t i = 0; i < repeat.value().size(); ++i) {
    const ServiceResult<Answer>& slot = repeat.value().answers[i];
    const ServiceResult<Answer>& first = answered.value().answers[i];
    if (slot.ok() != first.ok() ||
        (slot.ok() && slot.value().outputs != first.value().outputs)) {
      ++cross_check_failures;
    }
  }

  ServiceStats stats = service.stats();
  std::printf("\n%llu queries answered, %llu cache hits (%.0f%% hit rate), "
              "%llu rejected request(s)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.hits),
              100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.queries),
              static_cast<unsigned long long>(stats.failed_requests));
  std::printf("Shared oracle: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.oracle_hits),
              static_cast<unsigned long long>(stats.oracle_misses));
  std::printf("Answer memo: %llu hits, %llu entries; repeated batch added "
              "%llu oracle misses (memo bypasses the rewrite engine)\n",
              static_cast<unsigned long long>(stats.answer_cache_hits),
              static_cast<unsigned long long>(stats.answer_cache_entries),
              static_cast<unsigned long long>(stats.oracle_misses -
                                              oracle_misses_before));
  std::printf("All answers cross-checked against direct evaluation: %s\n",
              cross_check_failures == 0 ? "OK" : "FAILURES!");
  return cross_check_failures == 0 ? 0 : 1;
}
