// Quickstart: stand up the serving facade, register a document and a view,
// and answer a query through the cache — with Result-typed error handling
// end to end (malformed input never aborts).
//
//   ./quickstart [<query-xpath> <view-xpath>]
//
// With no arguments it runs the paper's Figure-1/2 example.

#include <cstdio>
#include <string>

#include "api/xpv.h"

namespace {

const char* kSampleDocument = R"(
<a>
  <e/>
  <u>
    <w><b><d/></b></w>
  </u>
  <v>
    <b><d/></b>
    <b/>
  </v>
</a>
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace xpv;

  std::string query_expr = argc > 2 ? argv[1] : "a[e]//*/b[d]";
  std::string view_expr = argc > 2 ? argv[2] : "a[e]/*";

  // 1. The serving facade: one Service, one document, one view. Every
  // fallible step returns a ServiceResult carrying a structured error.
  Service service;
  ServiceResult<DocumentId> doc = service.AddDocument(kSampleDocument);
  if (!doc.ok()) {
    std::fprintf(stderr, "[%s] %s\n", ToString(doc.error().code),
                 doc.error().message.c_str());
    return 1;
  }
  ServiceResult<ViewId> view = service.AddView(doc.value(), "demo-view",
                                               view_expr);
  if (!view.ok()) {
    std::fprintf(stderr, "[%s] %s\n", ToString(view.error().code),
                 view.error().message.c_str());
    return 1;
  }

  const Pattern& view_pattern = service.view(view.value())->pattern;
  std::printf("View  V: %s\n%s\n", view_expr.c_str(),
              view_pattern.ToAscii().c_str());

  // 2. Answer the query through the cache. A hit means the engine found a
  // rewriting R with R ∘ V ≡ P and evaluated R over the materialized view
  // only — the rest of the document was never touched.
  ServiceResult<Answer> answer = service.Answer(doc.value(), query_expr);
  if (!answer.ok()) {
    std::fprintf(stderr, "[%s] %s\n", ToString(answer.error().code),
                 answer.error().message.c_str());
    return 1;
  }

  Pattern query = ParseXPath(query_expr).take();  // Validated by Answer.
  std::printf("Query P: %s\n%s\n", query_expr.c_str(),
              query.ToAscii().c_str());
  if (answer.value().hit) {
    std::printf("HIT via view '%s'\n", answer.value().view_name.c_str());
    std::printf("Rewriting R: %s\n%s\n",
                ToXPath(answer.value().rewriting).c_str(),
                answer.value().rewriting.ToAscii().c_str());
    std::printf("Composition R∘V: %s\n\n",
                ToXPath(Compose(answer.value().rewriting,
                                view_pattern)).c_str());
  } else {
    RewriteResult decision = DecideRewrite(query, view_pattern);
    std::printf("miss (direct evaluation): %s\n\n",
                decision.explanation.c_str());
  }

  // 3. Cross-check against direct evaluation (Prop 2.4 in action).
  const Tree& tree = *service.document(doc.value());
  std::vector<NodeId> direct = Eval(query, tree);
  std::printf("Document has %d nodes.\n", tree.size());
  std::printf("P(t) directly:     %zu results\n", direct.size());
  std::printf("P(t) via Service:  %zu results — %s\n",
              answer.value().outputs.size(),
              answer.value().outputs == direct
                  ? "identical (Prop 2.4 in action)"
                  : "MISMATCH (bug!)");

  // 4. Errors are data, not aborts: a malformed query comes back as a
  // ServiceError with position and caret context.
  ServiceResult<Answer> bad = service.Answer(doc.value(), "a[b//]");
  if (!bad.ok()) {
    std::printf("\nMalformed query \"a[b//]\" is rejected cleanly:\n[%s] "
                "%s\n",
                ToString(bad.error().code), bad.error().message.c_str());
  }

  // 5. Handles are generation-tagged: after RemoveView the old ViewId is
  // *detectably* stale — even though its slot is immediately recycled for
  // the next view, it can never resolve to the wrong one.
  ServiceStatus removed = service.RemoveView(view.value());
  ServiceResult<ViewId> reborn = service.AddView(doc.value(), "demo-view",
                                                 view_expr);
  if (removed.ok() && reborn.ok()) {
    std::printf("\nView removed and re-added: old handle %s, new handle "
                "resolves to '%s'\n",
                service.view(view.value()) == nullptr ? "is stale"
                                                      : "RESOLVED (bug!)",
                service.view(reborn.value())->name.c_str());
  }

  return answer.value().outputs == direct ? 0 : 1;
}
