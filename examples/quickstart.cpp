// Quickstart: parse a query and a view, decide rewritability, and answer
// the query from the materialized view.
//
//   ./quickstart [<query-xpath> <view-xpath>]
//
// With no arguments it runs the paper's Figure-1/2 example.

#include <cstdio>
#include <string>

#include "eval/evaluator.h"
#include "pattern/algebra.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/engine.h"
#include "views/view_cache.h"
#include "xml/tree.h"
#include "xml/xml_parser.h"

namespace {

const char* kSampleDocument = R"(
<a>
  <e/>
  <u>
    <w><b><d/></b></w>
  </u>
  <v>
    <b><d/></b>
    <b/>
  </v>
</a>
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace xpv;

  std::string query_expr = argc > 2 ? argv[1] : "a[e]//*/b[d]";
  std::string view_expr = argc > 2 ? argv[2] : "a[e]/*";

  Result<Pattern> query = ParseXPath(query_expr);
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.error().c_str());
    return 1;
  }
  Result<Pattern> view = ParseXPath(view_expr);
  if (!view.ok()) {
    std::fprintf(stderr, "view: %s\n", view.error().c_str());
    return 1;
  }

  std::printf("Query P: %s\n%s\n", query_expr.c_str(),
              query.value().ToAscii().c_str());
  std::printf("View  V: %s\n%s\n", view_expr.c_str(),
              view.value().ToAscii().c_str());

  // 1. Decide rewritability.
  RewriteResult result = DecideRewrite(query.value(), view.value());
  std::printf("Decision: %s\n\n", result.explanation.c_str());
  if (result.status != RewriteStatus::kFound) return 0;

  std::printf("Rewriting R: %s\n%s\n", ToXPath(result.rewriting).c_str(),
              result.rewriting.ToAscii().c_str());
  std::printf("Composition R∘V: %s\n\n",
              ToXPath(Compose(result.rewriting, view.value())).c_str());

  // 2. Use it: materialize V over a document and answer P via R.
  Result<Tree> doc = ParseXml(kSampleDocument);
  if (!doc.ok()) {
    std::fprintf(stderr, "doc: %s\n", doc.error().c_str());
    return 1;
  }
  MaterializedView materialized({"demo-view", view.value()}, doc.value());
  std::printf("Document has %d nodes; V(t) has %zu result subtrees.\n",
              doc.value().size(), materialized.outputs().size());

  std::vector<NodeId> via_view = materialized.Apply(result.rewriting);
  std::vector<NodeId> direct = Eval(query.value(), doc.value());
  std::printf("P(t) directly:    %zu results\n", direct.size());
  std::printf("R(V(t)) via view: %zu results — %s\n", via_view.size(),
              via_view == direct ? "identical (Prop 2.4 in action)"
                                 : "MISMATCH (bug!)");
  return via_view == direct ? 0 : 1;
}
