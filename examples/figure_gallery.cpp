// Figure gallery: renders the paper's Figures 1-4 (as reconstructed in
// this repository) in ASCII and, with --dot, as Graphviz DOT — and
// re-verifies each figure's claims on the fly.
//
//   ./figure_gallery          # ASCII art + claim verification
//   ./figure_gallery --dot    # DOT output for all patterns

#include <cstdio>
#include <cstring>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/dot.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"

namespace {

void Show(const char* title, const xpv::Pattern& p, bool dot) {
  std::printf("--- %s: %s\n", title, xpv::ToXPath(p).c_str());
  if (dot) {
    std::printf("%s\n", xpv::PatternToDot(p, title).c_str());
  } else {
    std::printf("%s\n", p.ToAscii().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpv;
  const bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;
  int failures = 0;
  auto check = [&failures](const char* what, bool ok) {
    std::printf("    [%s] %s\n", ok ? "ok" : "FAIL", what);
    failures += ok ? 0 : 1;
  };

  std::printf("=== Figure 1: composition R ∘ V ===\n");
  Pattern v = MustParseXPath("a[e]/*");
  Pattern p = MustParseXPath("a[e]//*/b[d]");
  Pattern r = MustParseXPath("*//b[d]");
  Pattern rv = Compose(r, v);
  Show("V", v, dot);
  Show("P", p, dot);
  Show("R", r, dot);
  Show("R.V", rv, dot);
  check("R ∘ V ≡ P (R is an equivalent rewriting)", Equivalent(rv, p));

  std::printf("\n=== Figure 2: natural candidates ===\n");
  NaturalCandidates c = MakeNaturalCandidates(p, 1);
  Show("P>=1", c.sub, dot);
  Show("P>=1_r//", c.relaxed, dot);
  Show("P>=1.V", Compose(c.sub, v), dot);
  Show("P>=1_r//.V", Compose(c.relaxed, v), dot);
  check("P>=1 ∘ V ≢ P", !Equivalent(Compose(c.sub, v), p));
  check("P>=1_r// ∘ V ≡ P", Equivalent(Compose(c.relaxed, v), p));

  std::printf("\n=== Figure 3: branch relaxation ===\n");
  Pattern b = MustParseXPath("*[*/*[//a][//b]]");
  Pattern b_prime = MustParseXPath("*[//*//*[//a][//b]]");
  Pattern b_relaxed = RelaxRootEdges(b);
  Show("B", b, dot);
  Show("B'", b_prime, dot);
  Show("B_r//", b_relaxed, dot);
  check("B ⊑ B_r//", Contained(b, b_relaxed));
  check("B_r// ⊑ B'", Contained(b_relaxed, b_prime));
  check("B' ≡ B", Equivalent(b_prime, b));
  check("=> B ≡ B_r//", Equivalent(b, b_relaxed));

  std::printf("\n=== Figure 4: correlation, extension, lifting ===\n");
  Pattern v4 = MustParseXPath("a/*//*[b]/*");
  Pattern p2 = MustParseXPath("a/*//*[b]/*/c//b");
  LabelId mu = Labels().Fresh("mu_gallery");
  Pattern p2_ext = Extend(p2, mu);
  Pattern p2_lift = LiftOutput(p2_ext, 4);
  Pattern v4_ext = Extend(v4, LabelStore::kWildcard);
  Show("V", v4, dot);
  Show("P2", p2, dot);
  Show("P2^{+mu}", p2_ext, dot);
  Show("(P2^{+mu})^{4->}", p2_lift, dot);
  Show("V^{+*}", v4_ext, dot);
  check("lifted output is the c-node",
        p2_lift.label(p2_lift.output()) == L("c"));

  std::printf("\n%s\n", failures == 0 ? "All figure claims verified."
                                      : "FIGURE CLAIMS FAILED!");
  return failures == 0 ? 0 : 1;
}
