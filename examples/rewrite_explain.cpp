// Rewrite explainer: run the full decision pipeline on a (query, view)
// pair and narrate every step — necessary conditions, the two natural
// candidates and their compositions, the completeness conditions that
// certify nonexistence, and the optional brute-force fallback.
//
//   ./rewrite_explain [<query-xpath> <view-xpath>]
//
// With no arguments it explains a tour of instances, one per paper result.

#include <cstdio>
#include <string>

#include "containment/containment.h"
#include "pattern/algebra.h"
#include "pattern/properties.h"
#include "pattern/serializer.h"
#include "pattern/xpath_parser.h"
#include "rewrite/candidates.h"
#include "rewrite/engine.h"
#include "rewrite/gnf.h"
#include "rewrite/stability.h"

namespace {

void Explain(const std::string& qexpr, const std::string& vexpr) {
  using namespace xpv;
  Result<Pattern> qr = ParseXPath(qexpr);
  Result<Pattern> vr = ParseXPath(vexpr);
  if (!qr.ok() || !vr.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!qr.ok() ? qr.error() : vr.error()).c_str());
    return;
  }
  const Pattern& p = qr.value();
  const Pattern& v = vr.value();
  SelectionInfo pi(p);
  SelectionInfo vi(v);

  std::printf("==========================================================\n");
  std::printf("P = %s   (depth d = %d)\n", qexpr.c_str(), pi.depth());
  std::printf("V = %s   (depth k = %d)\n", vexpr.c_str(), vi.depth());

  if (auto violation = ViolatesBasicNecessaryConditions(p, v)) {
    std::printf("Necessary condition violated [%s]: %s\n",
                RuleName(violation->rule).c_str(),
                violation->detail.c_str());
    std::printf("=> NO REWRITING EXISTS.\n");
    return;
  }
  std::printf("Necessary conditions (Prop 3.1): pass.\n");

  const int k = vi.depth();
  NaturalCandidates candidates = MakeNaturalCandidates(p, k);
  std::printf("Natural candidates (linear time):\n");
  std::printf("  P>=k      = %s\n", ToXPath(candidates.sub).c_str());
  std::printf("  P>=k_r//  = %s%s\n", ToXPath(candidates.relaxed).c_str(),
              candidates.coincide ? "   (coincides with P>=k)" : "");
  std::printf("Structural facts: P>=k stable(sufficient): %s; P in GNF/*: "
              "%s\n",
              IsStableSufficient(candidates.sub) ? "yes" : "no",
              IsInGeneralizedNormalForm(p) ? "yes" : "no");

  Pattern composed_sub = Compose(candidates.sub, v);
  std::printf("Test 1: P>=k ∘ V = %s ... ", ToXPath(composed_sub).c_str());
  if (Equivalent(composed_sub, p)) {
    std::printf("≡ P. FOUND rewriting R = %s\n",
                ToXPath(candidates.sub).c_str());
    return;
  }
  std::printf("≢ P.\n");
  if (!candidates.coincide) {
    Pattern composed_rel = Compose(candidates.relaxed, v);
    std::printf("Test 2: P>=k_r// ∘ V = %s ... ",
                ToXPath(composed_rel).c_str());
    if (Equivalent(composed_rel, p)) {
      std::printf("≡ P. FOUND rewriting R = %s\n",
                  ToXPath(candidates.relaxed).c_str());
      return;
    }
    std::printf("≢ P.\n");
  }

  ConditionsReport report = EvaluateConditions(p, v);
  if (report.completeness.has_value()) {
    std::printf("Completeness certificate: ");
    for (size_t i = 0; i < report.completeness->chain.size(); ++i) {
      std::printf("%s%s", i ? " -> " : "",
                  RuleName(report.completeness->chain[i]).c_str());
    }
    std::printf("\n  (%s)\n", report.completeness->detail.c_str());
    std::printf("=> a natural candidate would be a rewriting if any "
                "existed; both failed => NO REWRITING EXISTS.\n");
    return;
  }

  std::printf("No completeness condition of Sections 4-5 applies; trying "
              "bounded enumeration (Prop 3.4)...\n");
  RewriteOptions options;
  options.enable_brute_force = true;
  options.brute_force_max_nodes = 5;
  options.brute_force_budget = 2000;
  RewriteResult result = DecideRewrite(p, v, options);
  std::printf("%s\n", result.explanation.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    Explain(argv[1], argv[2]);
    return 0;
  }
  std::printf("Explaining a tour of instances (pass query and view XPath "
              "arguments to explain your own):\n");
  const char* instances[][2] = {
      {"a[e]/b//c[x]/d", "a[e]/b"},    // Prefix view: P>=k works.
      {"a//*/b", "a/*"},               // Figure 2: relaxed candidate.
      {"a//b//d", "a//b[x]"},          // Thm 4.3 certificate.
      {"a//*/*/c", "a//*[z]/*"},       // Thm 4.16 certificate.
      {"a/*/c", "a/b"},                // Label mismatch (Prop 3.1(3)).
      {"a//*[b]/*/*/b", "a/*//*/*"},   // Cor 5.7 via suffix reduction.
      {"a//*[b//x]/*//*[b//x]/*", "a//*[b//x]/*[w]"},  // Unknown zone.
  };
  for (auto& inst : instances) Explain(inst[0], inst[1]);
  return 0;
}
