// Containment explorer: decide P1 ⊑ P2, P1 ≡ P2 and the weak variants for
// two XPath expressions, and show a counterexample tree when containment
// fails.
//
//   ./containment_explorer [<xpath1> <xpath2>]
//
// With no arguments it walks through a tour of instructive pairs,
// including the classic homomorphism-free equivalence a/*//b ≡ a//*/b and
// the weakly-equivalent-but-inequivalent pair */b vs *//b from [10].

#include <cstdio>
#include <string>
#include <vector>

#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "pattern/xpath_parser.h"
#include "xml/tree.h"

namespace {

void Analyze(const std::string& e1, const std::string& e2) {
  using namespace xpv;
  Result<Pattern> r1 = ParseXPath(e1);
  Result<Pattern> r2 = ParseXPath(e2);
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!r1.ok() ? r1.error() : r2.error()).c_str());
    return;
  }
  const Pattern& p1 = r1.value();
  const Pattern& p2 = r2.value();

  std::printf("----------------------------------------------------------\n");
  std::printf("P1 = %s\nP2 = %s\n", e1.c_str(), e2.c_str());

  ContainmentWitness witness{Tree(LabelStore::kBottom), kNoNode};
  ContainmentStats stats;
  bool c12 = Contained(p1, p2, &witness, &stats);
  std::printf("P1 ⊑ P2: %s", c12 ? "yes" : "no");
  if (c12) {
    std::printf(stats.homomorphism_hit
                    ? "  (via homomorphism, PTIME)\n"
                    : "  (via canonical models)\n");
  } else {
    std::printf("  — counterexample tree (output marked by depth %d):\n%s",
                witness.tree.Depth(witness.output),
                witness.tree.ToAscii().c_str());
  }
  bool c21 = Contained(p2, p1);
  std::printf("P2 ⊑ P1: %s\n", c21 ? "yes" : "no");
  std::printf("P1 ≡ P2: %s\n", (c12 && c21) ? "yes" : "no");
  std::printf("hom(P2→P1): %s, hom(P1→P2): %s\n",
              ExistsPatternHomomorphism(p2, p1) ? "yes" : "no",
              ExistsPatternHomomorphism(p1, p2) ? "yes" : "no");
  std::printf("P1 ⊑w P2: %s, P2 ⊑w P1: %s, P1 ≡w P2: %s\n",
              WeaklyContained(p1, p2) ? "yes" : "no",
              WeaklyContained(p2, p1) ? "yes" : "no",
              WeaklyEquivalent(p1, p2) ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    Analyze(argv[1], argv[2]);
    return 0;
  }
  std::printf("Touring instructive containment pairs "
              "(pass two XPath arguments to analyze your own):\n");
  const char* pairs[][2] = {
      {"a/b", "a//b"},
      {"a[b][c]", "a[b]"},
      {"a/*//b", "a//*/b"},   // Equivalent, no homomorphism either way.
      {"*/b", "*//b"},        // Weakly equivalent, not equivalent.
      {"a[b/c]", "a[//c]"},
      {"a//b/c", "a//c"},
  };
  for (auto& pair : pairs) Analyze(pair[0], pair[1]);
  return 0;
}
